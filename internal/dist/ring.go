package dist

import (
	"fmt"
	"sort"
)

// Ring is a consistent-hash ring over shard names: each shard contributes
// vnodes points (splitmix64 of name+replica), sorted on a 64-bit circle; a
// key is owned by the first point clockwise from it. Two properties matter
// here beyond plain balance, and FuzzShardRing pins both:
//
//   - Rebuild determinism: the same shard set yields the same ownership no
//     matter the order names were listed in (points tie-break on name).
//   - Minimal movement: adding a shard moves keys only onto the new shard
//     (≈1/S of them); removing one moves only the removed shard's keys.
//
// The coordinator routes partition keys (hashed free-mode tuples) and plan
// fingerprints through the same ring, so warm PreparedY plans stick to their
// shard as the fleet resizes.
type Ring struct {
	names  []string
	points []ringPoint
}

type ringPoint struct {
	hash  uint64
	shard int // index into names
}

// DefaultVNodes is the per-shard virtual-node count when NewRing gets 0.
// 64 points per shard keeps the max/mean key imbalance under ~1.35 for small
// fleets (TestRingBalance) at 1 KiB of ring per shard.
const DefaultVNodes = 64

// ringSeed domain-separates the ring's point hashes from the partitioner's
// key hashes (both use mix64).
const ringSeed = 0x9e3779b97f4a7c15

// mix64 is splitmix64's finalizer — the same full-avalanche mixer the
// engine's content fingerprints and the hashtab kernels use.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewRing builds a ring over the given shard names (vnodes <1 selects
// DefaultVNodes). Names must be non-empty and unique — they are the
// identity the minimal-movement property is defined over.
func NewRing(names []string, vnodes int) (*Ring, error) {
	if len(names) == 0 {
		return nil, fmt.Errorf("dist: ring needs at least one shard")
	}
	if vnodes < 1 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("dist: empty shard name")
		}
		if seen[n] {
			return nil, fmt.Errorf("dist: duplicate shard name %q", n)
		}
		seen[n] = true
	}
	r := &Ring{
		names:  append([]string(nil), names...),
		points: make([]ringPoint, 0, len(names)*vnodes),
	}
	for s, name := range r.names {
		h := uint64(ringSeed)
		for i := 0; i < len(name); i++ {
			h = mix64(h ^ uint64(name[i]))
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: mix64(h ^ uint64(v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Colliding points order by name, never by input position, so a
		// permuted shard list rebuilds to identical ownership.
		return r.names[a.shard] < r.names[b.shard]
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return len(r.names) }

// Names returns a copy of the shard names in registration order (the index
// space Owner returns).
func (r *Ring) Names() []string { return append([]string(nil), r.names...) }

// Name returns the shard name for an Owner index.
func (r *Ring) Name(s int) string { return r.names[s] }

// Owner returns the index of the shard owning key: the shard of the first
// ring point at or clockwise from the key's position.
func (r *Ring) Owner(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
