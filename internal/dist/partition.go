package dist

import (
	"fmt"

	"sparta/internal/coo"
	"sparta/internal/parallel"
)

// partitionSeed domain-separates key hashes from the ring's point hashes.
const partitionSeed = 0x2545f4914f6cdd1d

// maxShards bounds the fan-out so the per-nonzero shard map fits in a byte.
const maxShards = 256

// Partition scatters x's non-zeros into one tensor per ring shard, keyed by
// a mix64 chain over each non-zero's free-mode indices (the modes not in
// cmodesX, in original mode order). Every non-zero of one free-mode
// sub-tensor therefore lands on the same shard — the invariant that makes
// the per-shard sorted Z runs pairwise disjoint and the merged output
// bitwise identical to the one-shot contraction (see the package comment).
//
// The scatter is stable: within each shard, non-zeros keep x's original
// relative order (two counting passes with per-worker offsets, both split
// over identical chunks). A fully contracted X has no free modes, hashes to
// one constant key, and lands whole on a single shard. x itself is never
// mutated; the returned tensors share no storage with it.
func Partition(x *coo.Tensor, cmodesX []int, ring *Ring, threads int) ([]*coo.Tensor, error) {
	if x == nil {
		return nil, fmt.Errorf("dist: nil X tensor")
	}
	S := ring.Shards()
	if S > maxShards {
		return nil, fmt.Errorf("dist: %d shards exceeds the partitioner's cap of %d", S, maxShards)
	}
	order := x.Order()
	inX := make([]bool, order)
	for _, m := range cmodesX {
		if m < 0 || m >= order {
			return nil, fmt.Errorf("dist: contract mode %d out of range for order-%d X", m, order)
		}
		if inX[m] {
			return nil, fmt.Errorf("dist: duplicate contract mode %d", m)
		}
		inX[m] = true
	}
	var free []int
	for m := 0; m < order; m++ {
		if !inX[m] {
			free = append(free, m)
		}
	}

	n := x.NNZ()
	parts := make([]*coo.Tensor, S)
	for s := range parts {
		p, err := coo.New(x.Dims, 0)
		if err != nil {
			return nil, err
		}
		parts[s] = p
	}
	if n == 0 {
		return parts, nil
	}

	// Pass 1: hash every non-zero's free tuple, record its shard, count per
	// (worker, shard). Both parallel.For calls use the same (threads, n)
	// pair, so the static chunk boundaries are identical across passes.
	threads = parallel.ClampWork(threads, n, int64(n))
	shard := make([]uint8, n)
	counts := make([][]int, threads)
	parallel.For(threads, n, func(tid, lo, hi int) {
		cnt := make([]int, S)
		for i := lo; i < hi; i++ {
			h := uint64(partitionSeed)
			for _, m := range free {
				h = mix64(h ^ uint64(x.Inds[m][i]))
			}
			s := ring.Owner(h)
			shard[i] = uint8(s)
			cnt[s]++
		}
		counts[tid] = cnt
	})

	// Per-worker write offsets: worker tid's slice of shard s starts after
	// every earlier worker's slice — chunk-major order is original order.
	off := make([][]int, threads)
	sizes := make([]int, S)
	for tid := 0; tid < threads; tid++ {
		off[tid] = make([]int, S)
		for s := 0; s < S; s++ {
			off[tid][s] = sizes[s]
			sizes[s] += counts[tid][s]
		}
	}
	for s, p := range parts {
		for m := range p.Inds {
			p.Inds[m] = make([]uint32, sizes[s])
		}
		p.Vals = make([]float64, sizes[s])
	}

	// Pass 2: stable scatter into the pre-sized columns.
	parallel.For(threads, n, func(tid, lo, hi int) {
		pos := append([]int(nil), off[tid]...)
		for i := lo; i < hi; i++ {
			s := shard[i]
			p := parts[s]
			j := pos[s]
			pos[s] = j + 1
			for m := 0; m < order; m++ {
				p.Inds[m][j] = x.Inds[m][i]
			}
			p.Vals[j] = x.Vals[i]
		}
	})
	return parts, nil
}
