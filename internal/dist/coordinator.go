package dist

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/einsum"
	"sparta/internal/obs"
)

// Config assembles a Coordinator.
type Config struct {
	// Executors are the shards, one ring member each. Names must be unique.
	Executors []Executor
	// VNodes is the consistent-hash ring's per-shard point count
	// (0 = DefaultVNodes).
	VNodes int
	// ShardTimeout caps each shard attempt (0 = no per-attempt timeout;
	// the request ctx still applies).
	ShardTimeout time.Duration
	// MaxAttempts is how many executors a failing shard is tried on,
	// including the primary (0 = 2: primary plus one failover).
	MaxAttempts int
	// Metrics, when non-nil, receives sptc_dist_* counters and histograms.
	Metrics *obs.Registry
}

// Coordinator is the scatter/gather front: Partition → fan-out to executors
// (with per-attempt timeout and failover to the next ring shard) → MergeRuns.
// Safe for concurrent use; it holds no per-request state.
type Coordinator struct {
	execs   []Executor
	ring    *Ring
	timeout time.Duration
	maxAtt  int
	metrics *obs.Registry
}

// NewCoordinator validates the executor set and builds the ring.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Executors) == 0 {
		return nil, fmt.Errorf("dist: coordinator needs at least one executor")
	}
	names := make([]string, len(cfg.Executors))
	for i, ex := range cfg.Executors {
		if ex == nil {
			return nil, fmt.Errorf("dist: executor %d is nil", i)
		}
		names[i] = ex.Name()
	}
	ring, err := NewRing(names, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	maxAtt := cfg.MaxAttempts
	if maxAtt < 1 {
		maxAtt = 2
	}
	return &Coordinator{
		execs:   append([]Executor(nil), cfg.Executors...),
		ring:    ring,
		timeout: cfg.ShardTimeout,
		maxAtt:  maxAtt,
		metrics: cfg.Metrics,
	}, nil
}

// Shards returns the executor count.
func (c *Coordinator) Shards() int { return len(c.execs) }

// Ring exposes the routing ring (fingerprint-affinity lookups, tests).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Close closes every executor, returning the first error.
func (c *Coordinator) Close() error {
	var first error
	for _, ex := range c.execs {
		if err := ex.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OwnerOf returns the executor index the engine's 128-bit content
// fingerprint routes to — plan affinity for callers that pin whole requests
// (rather than partitions) to the shard holding the warm PreparedY. The two
// fingerprint lanes are folded to the ring's 64-bit key space.
func (c *Coordinator) OwnerOf(hi, lo uint64) int {
	return c.ring.Owner(mix64(hi ^ mix64(lo)))
}

// shardResult is one fan-out leg's outcome.
type shardResult struct {
	shard   int
	name    string
	z       *coo.Tensor
	rep     *core.Report
	wall    time.Duration
	retries int
	err     error
}

// Contract computes Z = X ×_{cmodesX}^{cmodesY} Y across the shards:
// partition X by hashed free-mode tuples, contract every non-empty shard
// concurrently against the replicated Y, and merge the sorted per-shard runs.
// Only AlgSparta is supported (the prepared path is what replication
// amortizes). The output is bitwise identical to the one-shot contraction —
// the oracle suite in oracle_test.go holds this across orders, kernels,
// shard counts, and thread counts.
func (c *Coordinator) Contract(ctx context.Context, x, y *coo.Tensor, cmodesX, cmodesY []int, opt core.Options) (*coo.Tensor, *core.Report, error) {
	if opt.Algorithm != core.AlgSparta {
		return nil, nil, fmt.Errorf("dist: sharded execution supports only %v, got %v", core.AlgSparta, opt.Algorithm)
	}
	if x == nil || y == nil {
		return nil, nil, fmt.Errorf("dist: nil input tensor")
	}
	zdims, err := outDims(x, y, cmodesX, cmodesY)
	if err != nil {
		return nil, nil, err
	}
	rt := obs.ReqFrom(ctx)

	t0 := time.Now()
	sp := rt.StartPhase("shard partition")
	parts, err := Partition(x, cmodesX, c.ring, opt.Threads)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	partWall := time.Since(t0)

	job := Job{CmodesX: cmodesX, CmodesY: cmodesY, Options: opt}
	// Partitions are private copies: let the shard pipeline permute and
	// sort them in place instead of cloning again.
	job.Options.InPlace = true

	// Fan out one goroutine per non-empty shard. The buffered channel
	// guarantees every leg can deliver and exit even if a sibling failed —
	// no goroutine outlives Contract (fault_test.go counts them).
	fanCtx, cancel := context.WithCancel(obs.DetachReq(ctx))
	defer cancel()
	results := make(chan shardResult, len(parts))
	var wg sync.WaitGroup
	dispatched := 0
	for s, p := range parts {
		if p.NNZ() == 0 {
			continue
		}
		dispatched++
		wg.Add(1)
		//lint:ignore chunkloop one goroutine per shard RPC (bounded by S), not data-parallel work for parallel.For
		go func(s int, p *coo.Tensor) {
			defer wg.Done()
			res := c.runShard(fanCtx, s, p, y, job)
			if res.err != nil {
				cancel() // abort the siblings: the request cannot succeed
			}
			results <- res
		}(s, p)
	}
	wg.Wait()
	close(results)

	runs := make([]*coo.Tensor, len(parts))
	reps := make([]*core.Report, len(parts))
	retries := 0
	var failure error
	for res := range results {
		if res.err != nil {
			// Prefer the root-cause ShardError — one with real attempts —
			// over siblings that died of the fan-out cancellation it
			// triggered (those carry zero attempts).
			if se, ok := res.err.(*ShardError); ok && se.Attempts > 0 {
				if fe, ok := failure.(*ShardError); !ok || fe.Attempts == 0 {
					failure = res.err
				}
			} else if failure == nil {
				failure = res.err
			}
			continue
		}
		runs[res.shard] = res.z
		reps[res.shard] = res.rep
		retries += res.retries
		rt.AddPhase("shard "+res.name, res.wall)
	}
	if failure != nil {
		if perr := ctx.Err(); perr != nil {
			// The request itself was canceled or timed out; report that,
			// not the shard casualties it caused.
			c.countRequest("canceled")
			return nil, nil, perr
		}
		c.countRequest("error")
		return nil, nil, failure
	}

	tM := time.Now()
	spM := rt.StartPhase("shard merge")
	z, err := coo.MergeRuns(zdims, runs)
	spM.End()
	if err != nil {
		return nil, nil, err
	}
	mergeWall := time.Since(tM)

	rep := c.aggregate(reps, opt)
	rep.Shards = dispatched
	rep.ShardRetries = retries
	rep.PartitionWall = partWall
	rep.MergeWall = mergeWall
	rep.StageWall[core.StageInput] += partWall
	rep.StageWall[core.StageWrite] += mergeWall
	rep.NNZX = x.NNZ()
	rep.NNZY = y.NNZ()
	rep.NNZZ = z.NNZ()
	rt.SetTag("shards", strconv.Itoa(dispatched))
	if retries > 0 {
		rt.SetTag("shard_retries", strconv.Itoa(retries))
	}
	c.countRequest("ok")
	if c.metrics != nil {
		c.metrics.Histogram("sptc_dist_merge_seconds", "coordinator run-merge wall time",
			[]float64{1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1}).Observe(mergeWall.Seconds())
	}
	return z, rep, nil
}

// Einsum is Contract with an Einstein-summation spec, mirroring
// engine.Einsum (including the output permutation and re-sort) so a
// Coordinator satisfies the same Contractor seam sptc-serve and EvalChainOn
// call through.
func (c *Coordinator) Einsum(ctx context.Context, spec string, x, y *coo.Tensor, opt core.Options) (*coo.Tensor, *core.Report, error) {
	ein, err := einsum.Parse(spec)
	if err != nil {
		return nil, nil, err
	}
	if err := ein.CheckRanks(spec, x.Order(), y.Order()); err != nil {
		return nil, nil, err
	}
	z, rep, err := c.Contract(ctx, x, y, ein.CmodesX, ein.CmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	if !ein.IdentityOut {
		if err := z.Permute(ein.OutPerm); err != nil {
			return nil, nil, err
		}
		if !opt.SkipOutputSort {
			z.Sort(opt.Threads)
		}
	}
	return z, rep, nil
}

// runShard contracts one partition with failover: the primary executor is
// the partition's ring shard; each later attempt moves to the next executor
// index. Attempts stop on parent-context cancellation (retrying a canceled
// request would mask the cancellation).
func (c *Coordinator) runShard(ctx context.Context, s int, p, y *coo.Tensor, job Job) shardResult {
	S := len(c.execs)
	var lastErr error
	attempts := 0
	for attempt := 0; attempt < c.maxAtt; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		ex := c.execs[(s+attempt)%S]
		attempts++
		actx, cancel := ctx, context.CancelFunc(func() {})
		if c.timeout > 0 {
			actx, cancel = context.WithTimeout(ctx, c.timeout)
		}
		t0 := time.Now()
		z, rep, err := ex.Contract(actx, p, y, job)
		cancel()
		if err == nil {
			c.observeShard(ex.Name(), time.Since(t0))
			return shardResult{shard: s, name: ex.Name(), z: z, rep: rep, wall: time.Since(t0), retries: attempt}
		}
		lastErr = err
		c.countFailure(ex.Name())
		if ctx.Err() != nil {
			break // the fan-out (or request) is canceled: stop failing over
		}
	}
	return shardResult{shard: s, err: &ShardError{Shard: c.execs[s].Name(), Attempts: attempts, Err: lastErr}}
}

// aggregate folds the per-shard reports into one request report: stage walls
// are maxima (the concurrent legs' critical path), CPU sums and operation
// counters are sums, and HtYReused holds only if every shard reused its
// table.
func (c *Coordinator) aggregate(reps []*core.Report, opt core.Options) *core.Report {
	agg := &core.Report{
		Algorithm: opt.Algorithm,
		Kernel:    opt.Kernel,
		Threads:   opt.Threads,
		HtYReused: true,
	}
	seen := false
	for _, r := range reps {
		if r == nil {
			continue
		}
		for s := core.Stage(0); s < core.NumStages; s++ {
			if r.StageWall[s] > agg.StageWall[s] {
				agg.StageWall[s] = r.StageWall[s]
			}
			agg.StageCPU[s] += r.StageCPU[s]
		}
		if r.HtYBuild > agg.HtYBuild {
			agg.HtYBuild = r.HtYBuild
		}
		agg.HtYReused = agg.HtYReused && r.HtYReused
		if r.SubsortWall > agg.SubsortWall {
			agg.SubsortWall = r.SubsortWall
		}
		agg.NF += r.NF
		if r.MaxSubNNZX > agg.MaxSubNNZX {
			agg.MaxSubNNZX = r.MaxSubNNZX
		}
		if r.MaxSubNNZY > agg.MaxSubNNZY {
			agg.MaxSubNNZY = r.MaxSubNNZY
		}
		if r.DistinctKeysY > agg.DistinctKeysY {
			agg.DistinctKeysY = r.DistinctKeysY
		}
		if r.BucketsHtY > agg.BucketsHtY {
			agg.BucketsHtY = r.BucketsHtY
		}
		agg.SearchSteps += r.SearchSteps
		agg.ProbesHtY += r.ProbesHtY
		agg.HitsY += r.HitsY
		agg.MissY += r.MissY
		agg.Products += r.Products
		agg.SPACompares += r.SPACompares
		agg.ProbesHtA += r.ProbesHtA
		agg.AccumHits += r.AccumHits
		agg.AccumMiss += r.AccumMiss
		agg.Streamed = agg.Streamed || r.Streamed
		agg.Windows += r.Windows
		agg.SpilledZ = agg.SpilledZ || r.SpilledZ
		agg.BytesX += r.BytesX
		if r.BytesY > agg.BytesY {
			agg.BytesY = r.BytesY // Y is replicated, not partitioned
		}
		if r.BytesHtY > agg.BytesHtY {
			agg.BytesHtY = r.BytesHtY
		}
		agg.BytesHtA += r.BytesHtA
		if r.BytesHtAPerThr > agg.BytesHtAPerThr {
			agg.BytesHtAPerThr = r.BytesHtAPerThr
		}
		agg.BytesZLocal += r.BytesZLocal
		agg.BytesZ += r.BytesZ
		seen = true
	}
	if !seen {
		agg.HtYReused = false
	}
	return agg
}

func (c *Coordinator) countRequest(outcome string) {
	if c.metrics == nil {
		return
	}
	c.metrics.Counter("sptc_dist_requests_total", "sharded contractions by outcome",
		"outcome", outcome).Inc()
}

func (c *Coordinator) countFailure(shard string) {
	if c.metrics == nil {
		return
	}
	c.metrics.Counter("sptc_dist_shard_failures_total", "failed shard attempts by executor",
		"shard", shard).Inc()
}

func (c *Coordinator) observeShard(shard string, wall time.Duration) {
	if c.metrics == nil {
		return
	}
	c.metrics.Histogram("sptc_dist_shard_seconds", "per-shard contraction wall time",
		[]float64{1e-4, 1e-3, 1e-2, 0.1, 1, 10}, "shard", shard).Observe(wall.Seconds())
}

// outDims computes and validates the merged output's dims: X free dims in
// original mode order, then Y free dims — exactly core's plan order, so the
// per-shard runs and the one-shot output share a coordinate space. A fully
// contracted result is the scalar [1] tensor, matching core.
func outDims(x, y *coo.Tensor, cmodesX, cmodesY []int) ([]uint64, error) {
	if len(cmodesX) == 0 {
		return nil, fmt.Errorf("dist: contraction needs at least one contract-mode pair")
	}
	if len(cmodesX) != len(cmodesY) {
		return nil, fmt.Errorf("dist: %d contract modes for X but %d for Y", len(cmodesX), len(cmodesY))
	}
	inX := make([]bool, x.Order())
	for _, m := range cmodesX {
		if m < 0 || m >= x.Order() || inX[m] {
			return nil, fmt.Errorf("dist: bad X contract mode %d", m)
		}
		inX[m] = true
	}
	inY := make([]bool, y.Order())
	for k, m := range cmodesY {
		if m < 0 || m >= y.Order() || inY[m] {
			return nil, fmt.Errorf("dist: bad Y contract mode %d", m)
		}
		inY[m] = true
		if x.Dims[cmodesX[k]] != y.Dims[m] {
			return nil, fmt.Errorf("dist: contract pair %d: X mode %d has size %d but Y mode %d has size %d",
				k, cmodesX[k], x.Dims[cmodesX[k]], m, y.Dims[m])
		}
	}
	var zdims []uint64
	for m := 0; m < x.Order(); m++ {
		if !inX[m] {
			zdims = append(zdims, x.Dims[m])
		}
	}
	for m := 0; m < y.Order(); m++ {
		if !inY[m] {
			zdims = append(zdims, y.Dims[m])
		}
	}
	if len(zdims) == 0 {
		zdims = []uint64{1}
	}
	return zdims, nil
}
