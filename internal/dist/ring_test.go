package dist

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
)

func ringNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("shard-%d", i)
	}
	return names
}

func TestRingDeterministicAcrossRebuilds(t *testing.T) {
	names := ringNames(5)
	a, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(names, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %#x: owners differ across identical rebuilds", k)
		}
	}
}

func TestRingOrderIndependence(t *testing.T) {
	names := ringNames(6)
	perm := []string{names[3], names[0], names[5], names[1], names[4], names[2]}
	a, _ := NewRing(names, 32)
	b, _ := NewRing(perm, 32)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		k := rng.Uint64()
		if a.Name(a.Owner(k)) != b.Name(b.Owner(k)) {
			t.Fatalf("key %#x: owner name depends on registration order", k)
		}
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard name accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard name accepted")
	}
}

// TestRingBalance bounds the max/mean key imbalance for random keys — the
// property that makes hash partitioning a scale-out strategy at all. The
// bound is generous (vnode placement is random-ish, not perfect), but a
// broken point hash (e.g. all points colliding) blows far past it.
func TestRingBalance(t *testing.T) {
	for _, S := range []int{2, 4, 8} {
		r, err := NewRing(ringNames(S), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make([]int, S)
		rng := rand.New(rand.NewSource(int64(S)))
		const keys = 200000
		for i := 0; i < keys; i++ {
			counts[r.Owner(rng.Uint64())]++
		}
		mean := float64(keys) / float64(S)
		for s, c := range counts {
			ratio := float64(c) / mean
			if ratio > 1.6 || ratio < 0.5 {
				t.Errorf("S=%d: shard %d holds %.2fx the mean (%d keys)", S, s, ratio, c)
			}
		}
	}
}

// TestRingMinimalMovement is the deterministic version of the fuzz
// properties: adding a shard moves keys only to the new shard; removing one
// moves only its keys; and the moved fraction on add is near 1/S.
func TestRingMinimalMovement(t *testing.T) {
	base := ringNames(4)
	r4, _ := NewRing(base, 0)
	r5, _ := NewRing(append(append([]string(nil), base...), "shard-new"), 0)
	rng := rand.New(rand.NewSource(7))
	const keys = 100000
	moved := 0
	for i := 0; i < keys; i++ {
		k := rng.Uint64()
		oldName := r4.Name(r4.Owner(k))
		newName := r5.Name(r5.Owner(k))
		if oldName != newName {
			moved++
			if newName != "shard-new" {
				t.Fatalf("key %#x moved %s -> %s, not to the added shard", k, oldName, newName)
			}
		}
	}
	frac := float64(moved) / keys
	// Expect ~1/5 of keys on the new shard; tolerate 2x vnode placement skew.
	if frac > 2.0/5 || frac < 0.05 {
		t.Errorf("add moved %.1f%% of keys, want ≈20%%", 100*frac)
	}

	// Removal: drop shard-2; every key previously elsewhere must not move.
	removed := []string{base[0], base[1], base[3]}
	r3, _ := NewRing(removed, 0)
	for i := 0; i < keys; i++ {
		k := rng.Uint64()
		oldName := r4.Name(r4.Owner(k))
		newName := r3.Name(r3.Owner(k))
		if oldName != "shard-2" && oldName != newName {
			t.Fatalf("key %#x moved %s -> %s though its shard was not removed", k, oldName, newName)
		}
	}
}

// FuzzShardRing pins the consistent-hashing contract against adversarial
// shard sets and keys: (1) rebuild determinism including under permutation,
// (2) add-one-shard moves keys only onto the new shard and at most
// ~(1/S + slack) of them, (3) remove-one-shard moves only the removed
// shard's keys.
func FuzzShardRing(f *testing.F) {
	f.Add([]byte("ab"), uint16(3), uint16(17))
	f.Add([]byte("shard"), uint16(8), uint16(64))
	f.Add([]byte{0xff, 0x00, 0x41}, uint16(1), uint16(1))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), uint16(12), uint16(5))
	f.Fuzz(func(t *testing.T, nameSeed []byte, nShards, vnodes uint16) {
		S := int(nShards%16) + 1
		// Floor the vnode count: the movement *target* properties are exact
		// at any vnode count, but the movement *fraction* bound is
		// statistical and needs enough ring points to concentrate (a single
		// point's arc length is exponentially distributed).
		v := int(vnodes%113) + 16
		names := make([]string, S)
		for i := range names {
			names[i] = fmt.Sprintf("%x-%d", nameSeed, i)
		}
		r, err := NewRing(names, v)
		if err != nil {
			t.Fatal(err)
		}

		// Keys derive from the fuzz input so the corpus explores the space.
		var seed uint64 = 0x9e37
		for _, b := range nameSeed {
			seed = mix64(seed ^ uint64(b))
		}
		keys := make([]uint64, 512)
		for i := range keys {
			var buf [8]byte
			binary.LittleEndian.PutUint64(buf[:], seed+uint64(i))
			keys[i] = mix64(binary.LittleEndian.Uint64(buf[:]))
		}

		// (1) Determinism: a permuted rebuild owns every key identically.
		perm := append([]string(nil), names...)
		for i := range perm {
			j := int(mix64(seed+uint64(i)) % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		rp, err := NewRing(perm, v)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if r.Name(r.Owner(k)) != rp.Name(rp.Owner(k)) {
				t.Fatalf("key %#x: ownership depends on registration order", k)
			}
		}

		// (2) Add one shard: movement only onto it, bounded fraction.
		grown, err := NewRing(append(append([]string(nil), names...), fmt.Sprintf("%x-added", nameSeed)), v)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, k := range keys {
			oldName := r.Name(r.Owner(k))
			newName := grown.Name(grown.Owner(k))
			if oldName != newName {
				if newName != fmt.Sprintf("%x-added", nameSeed) {
					t.Fatalf("key %#x moved %s -> %s, not to the added shard", k, oldName, newName)
				}
				moved++
			}
		}
		// Expected share 1/(S+1); low vnode counts are noisy, so bound at
		// 3x the expectation plus an absolute floor for tiny samples.
		if limit := 3*len(keys)/(S+1) + 32; moved > limit {
			t.Fatalf("add moved %d/%d keys (S=%d, vnodes=%d), limit %d", moved, len(keys), S, v, limit)
		}

		// (3) Remove one shard: only its keys move.
		if S > 1 {
			victim := int(seed % uint64(S))
			var kept []string
			for i, n := range names {
				if i != victim {
					kept = append(kept, n)
				}
			}
			shrunk, err := NewRing(kept, v)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range keys {
				oldName := r.Name(r.Owner(k))
				newName := shrunk.Name(shrunk.Owner(k))
				if oldName != names[victim] && oldName != newName {
					t.Fatalf("key %#x moved %s -> %s though its shard stayed", k, oldName, newName)
				}
			}
		}
	})
}
