package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"sparta/internal/coo"
	"sparta/internal/core"
	"sparta/internal/engine"
	"sparta/internal/obs"
)

// HTTPConfig sizes a remote shard executor.
type HTTPConfig struct {
	// Client is the HTTP client to use (nil = http.DefaultClient; supply
	// one with transport limits for production fleets).
	Client *http.Client
	// MaxInflight bounds concurrent requests to this worker (0 = unbounded).
	MaxInflight int
	// Threads overrides the fingerprint thread count for Y registration
	// (0 = the job's thread count).
	Threads int
}

// HTTP is a remote shard executor speaking to another sptc-serve instance:
// Y is uploaded once per content fingerprint as a binary SPTN tensor named
// "dist-<fp>" (the worker's plan cache then keeps its HtY warm), and each
// Contract POSTs the shard's X in binary to /shard/contract. The request ID
// from ctx's obs.ReqTrace propagates via X-Request-ID, so the worker's span
// tree and access-log line join the coordinator's under one ID.
type HTTP struct {
	base   string
	client *http.Client
	sem    chan struct{}

	mu       sync.Mutex
	uploaded map[string]bool // Y fingerprint -> registered on the worker
}

// NewHTTP builds a remote executor for a worker base URL
// (e.g. "http://10.0.0.7:8080").
func NewHTTP(base string, cfg HTTPConfig) *HTTP {
	h := &HTTP{
		base:     strings.TrimRight(base, "/"),
		client:   cfg.Client,
		uploaded: make(map[string]bool),
	}
	if h.client == nil {
		h.client = http.DefaultClient
	}
	if cfg.MaxInflight > 0 {
		h.sem = make(chan struct{}, cfg.MaxInflight)
	}
	return h
}

// Name implements Executor: the worker URL is the ring identity, so a fleet
// resize moves the minimal key range.
func (h *HTTP) Name() string { return h.base }

// Contract implements Executor.
func (h *HTTP) Contract(ctx context.Context, x, y *coo.Tensor, job Job) (*coo.Tensor, *core.Report, error) {
	if h.sem != nil {
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	fp := engine.FingerprintTensor(y, job.Options.Threads).String()
	yName, err := h.ensureY(ctx, fp, y)
	if err != nil {
		return nil, nil, err
	}

	q := url.Values{}
	q.Set("y", yName)
	q.Set("cx", modesCSV(job.CmodesX))
	q.Set("cy", modesCSV(job.CmodesY))
	q.Set("kernel", job.Options.Kernel.String())
	if job.Options.Threads > 0 {
		q.Set("threads", strconv.Itoa(job.Options.Threads))
	}
	var body bytes.Buffer
	if err := x.WriteBin(&body); err != nil {
		return nil, nil, fmt.Errorf("dist: encoding shard X: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		h.base+"/shard/contract?"+q.Encode(), &body)
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/x-sptn")
	if id := obs.ReqFrom(ctx).ID(); id != "" {
		req.Header.Set("X-Request-ID", id)
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: worker %s: %w", h.base, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("dist: worker %s: %s", h.base, readError(resp))
	}
	z, err := coo.ReadBin(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: decoding worker %s reply: %w", h.base, err)
	}
	rep := &core.Report{}
	if hdr := resp.Header.Get("X-Sptc-Report"); hdr != "" {
		// A malformed report header degrades to an empty report; the tensor
		// is the contract, the report is advisory.
		_ = json.Unmarshal([]byte(hdr), rep)
	}
	return z, rep, nil
}

// ensureY registers Y on the worker under its content-fingerprint name,
// once per executor lifetime. The upload runs under the registration lock —
// concurrent shard legs sharing one Y then upload it exactly once.
func (h *HTTP) ensureY(ctx context.Context, fp string, y *coo.Tensor) (string, error) {
	name := "dist-" + fp
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.uploaded[fp] {
		return name, nil
	}
	var body bytes.Buffer
	if err := y.WriteBin(&body); err != nil {
		return "", fmt.Errorf("dist: encoding Y: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		h.base+"/tensors/"+url.PathEscape(name), &body)
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/x-sptn")
	resp, err := h.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("dist: registering Y on %s: %w", h.base, err)
	}
	defer drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("dist: registering Y on %s: %s", h.base, readError(resp))
	}
	h.uploaded[fp] = true
	return name, nil
}

// Close implements Executor.
func (h *HTTP) Close() error {
	h.client.CloseIdleConnections()
	return nil
}

// modesCSV renders a contract-mode list for the query string.
func modesCSV(modes []int) string {
	var b strings.Builder
	for i, m := range modes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(m))
	}
	return b.String()
}

// ParseModesCSV parses the query-string form back ("" = empty list). Shared
// with the worker endpoint in sptc-serve.
func ParseModesCSV(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	modes := make([]int, len(parts))
	for i, p := range parts {
		m, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad mode list %q: %w", s, err)
		}
		modes[i] = m
	}
	return modes, nil
}

// readError extracts a worker error body ({"error": "..."} or plain text),
// truncated for log hygiene.
func readError(resp *http.Response) string {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(raw, &er) == nil && er.Error != "" {
		return fmt.Sprintf("status %d: %s", resp.StatusCode, er.Error)
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Sprintf("status %d: %s", resp.StatusCode, msg)
}

// drainClose consumes what remains of a response body so the connection can
// be reused, then closes it.
func drainClose(rc io.ReadCloser) {
	_, _ = io.Copy(io.Discard, io.LimitReader(rc, 1<<20))
	_ = rc.Close()
}
