package sortx

import (
	"math/rand"
	"slices"
	"testing"
)

// oracle sorts a copy with the stdlib stable sort, the reference every
// engine path must match exactly (stability included).
func oracle(a []KeyPos) []KeyPos {
	o := append([]KeyPos(nil), a...)
	slices.SortStableFunc(o, func(x, y KeyPos) int {
		switch {
		case x.Key < y.Key:
			return -1
		case x.Key > y.Key:
			return 1
		default:
			return 0
		}
	})
	return o
}

func checkSorted(t *testing.T, name string, got, want []KeyPos) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %+v, want %+v", name, i, got[i], want[i])
		}
	}
}

// adversarialInputs covers the radix engine's corner cases: all-equal keys,
// a single dense byte, already/reverse sorted, two values, and keys at the
// 2^64 boundary (the lnum boundary dims: a radix whose Card is the full
// uint64 range makes maxKey = 2^64-1 and every byte significant).
func adversarialInputs(n int, rng *rand.Rand) map[string]struct {
	keys   []uint64
	maxKey uint64
} {
	mk := func(f func(i int) uint64, maxKey uint64) struct {
		keys   []uint64
		maxKey uint64
	} {
		ks := make([]uint64, n)
		for i := range ks {
			ks[i] = f(i)
		}
		return struct {
			keys   []uint64
			maxKey uint64
		}{ks, maxKey}
	}
	return map[string]struct {
		keys   []uint64
		maxKey uint64
	}{
		"random64":      mk(func(int) uint64 { return rng.Uint64() }, ^uint64(0)),
		"random-narrow": mk(func(int) uint64 { return uint64(rng.Intn(1000)) }, 999),
		"all-equal":     mk(func(int) uint64 { return 0xDEADBEEF }, 1<<40),
		"single-dense-byte": mk(func(int) uint64 {
			// only byte 3 varies; bytes 0-2 and 4-7 are constant
			return 0x11_00_00_00_00_00_22_33 | uint64(rng.Intn(256))<<24
		}, ^uint64(0)),
		"ascending":  mk(func(i int) uint64 { return uint64(i) }, uint64(n)),
		"descending": mk(func(i int) uint64 { return uint64(n - i) }, uint64(n)),
		"two-values": mk(func(int) uint64 { return uint64(rng.Intn(2)) * (1 << 50) }, 1<<51),
		"boundary-2^64": mk(func(int) uint64 {
			// keys hugging both ends of the uint64 range
			if rng.Intn(2) == 0 {
				return ^uint64(0) - uint64(rng.Intn(4))
			}
			return uint64(rng.Intn(4))
		}, ^uint64(0)),
	}
}

// TestSortMatchesOracle sweeps sizes (serial and parallel paths), thread
// counts, and adversarial key patterns; every combination must match the
// stable stdlib sort exactly, proving both the ordering and the stability
// the coo sorter's tie-break relies on.
func TestSortMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 17, 100, 4096, parallelMin + 1234} {
		for name, in := range adversarialInputs(n, rng) {
			for _, threads := range []int{1, 2, 4, 8} {
				a := make([]KeyPos, n)
				for i := range a {
					a[i] = KeyPos{Key: in.keys[i], Pos: int32(i)}
				}
				want := oracle(a)
				st := Sort(a, in.maxKey, threads)
				checkSorted(t, name, a, want)
				if n >= 2 && st.Passes+st.Skipped == 0 && in.maxKey > 0 && !st.Serial && !st.Sorted {
					t.Fatalf("%s n=%d threads=%d: no passes accounted: %+v", name, n, threads, st)
				}
			}
		}
	}
}

// TestSortSkipsConstantBytes asserts the pass-skipping claims: all-equal
// keys execute zero passes, and single-dense-byte keys partition on exactly
// that byte with zero LSD passes.
func TestSortSkipsConstantBytes(t *testing.T) {
	n := parallelMin + 100
	a := make([]KeyPos, n)
	for i := range a {
		a[i] = KeyPos{Key: 42, Pos: int32(i)}
	}
	st := Sort(a, 1<<30, 4)
	if st.Passes != 0 {
		t.Fatalf("all-equal keys ran %d passes, want 0 (%+v)", st.Passes, st)
	}
	for i := range a {
		if a[i].Pos != int32(i) {
			t.Fatalf("all-equal keys permuted the input at %d", i)
		}
	}

	rng := rand.New(rand.NewSource(8))
	for i := range a {
		a[i] = KeyPos{Key: 0xAA_00_00_00_00_00_00_55 | uint64(rng.Intn(256))<<24, Pos: int32(i)}
	}
	want := oracle(a)
	st = Sort(a, ^uint64(0), 4)
	checkSorted(t, "single-dense-byte", a, want)
	if st.Passes != 1 {
		t.Fatalf("single dense byte ran %d passes, want 1 (MSD only): %+v", st.Passes, st)
	}
	if st.Skipped != 7 {
		t.Fatalf("single dense byte skipped %d passes, want 7: %+v", st.Skipped, st)
	}
}

// TestSortSortedInput asserts the pre-scan: a key-sorted input (including
// all-equal keys, which are trivially sorted) must return with Sorted set,
// zero passes, and the slice untouched.
func TestSortSortedInput(t *testing.T) {
	n := parallelMin + 77
	a := make([]KeyPos, n)
	for i := range a {
		a[i] = KeyPos{Key: uint64(i / 3), Pos: int32(i)} // sorted with duplicates
	}
	st := Sort(a, uint64(n), 4)
	if !st.Sorted || st.Passes != 0 {
		t.Fatalf("sorted input not short-circuited: %+v", st)
	}
	for i := range a {
		if a[i].Pos != int32(i) {
			t.Fatalf("sorted input permuted at %d", i)
		}
	}
}

// TestSortStats sanity-checks the partition accounting on the parallel path.
func TestSortStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 2 * parallelMin
	a := make([]KeyPos, n)
	for i := range a {
		a[i] = KeyPos{Key: rng.Uint64(), Pos: int32(i)}
	}
	st := Sort(a, ^uint64(0), 4)
	if st.Serial {
		t.Fatalf("n=%d threads=4 took the serial path", n)
	}
	if st.Partitions < 2 || st.Partitions > 256 {
		t.Fatalf("partitions = %d, want 2..256", st.Partitions)
	}
	if st.MaxRun < n/256 || st.MaxRun > n {
		t.Fatalf("MaxRun = %d out of range for n=%d", st.MaxRun, n)
	}
}

// TestSortPairsMatchesOracle checks the fused-writeback run sorter against
// a sorted copy, values tracking their keys, across sizes spanning the
// insertion and radix paths, including duplicate keys.
func TestSortPairsMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sk []uint64
	var sv []float64
	for _, n := range []int{0, 1, 2, pairInsertionMax, pairInsertionMax + 1, 1000, 30000} {
		for trial := 0; trial < 3; trial++ {
			maxKey := uint64(1)<<uint(8+rng.Intn(56)) - 1
			keys := make([]uint64, n)
			vals := make([]float64, n)
			type kv struct {
				k uint64
				v float64
			}
			ref := make([]kv, n)
			for i := range keys {
				keys[i] = rng.Uint64() & maxKey
				vals[i] = float64(keys[i]) * 0.5
				ref[i] = kv{keys[i], vals[i]}
			}
			slices.SortStableFunc(ref, func(a, b kv) int {
				switch {
				case a.k < b.k:
					return -1
				case a.k > b.k:
					return 1
				default:
					return 0
				}
			})
			SortPairs(keys, vals, maxKey, &sk, &sv)
			for i := range keys {
				if keys[i] != ref[i].k || vals[i] != ref[i].v {
					t.Fatalf("n=%d trial=%d: pair %d = (%d,%v), want (%d,%v)",
						n, trial, i, keys[i], vals[i], ref[i].k, ref[i].v)
				}
			}
		}
	}
}

// TestSortPairsSharedHighBytes: a run whose keys differ only in the low
// byte must sort correctly while the scratch stays untouched by high-byte
// passes (behavioral check: result correct with a tiny scratch reused
// across differently-shaped runs).
func TestSortPairsSharedHighBytes(t *testing.T) {
	var sk []uint64
	var sv []float64
	base := uint64(0x0123_4567_89AB_0000)
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		n := 100 + rng.Intn(400)
		keys := make([]uint64, n)
		vals := make([]float64, n)
		for i := range keys {
			keys[i] = base | uint64(rng.Intn(256))
			vals[i] = float64(i)
		}
		SortPairs(keys, vals, ^uint64(0), &sk, &sv)
		for i := 1; i < n; i++ {
			if keys[i] < keys[i-1] {
				t.Fatalf("trial %d: keys out of order at %d", trial, i)
			}
		}
	}
}

func BenchmarkSortRandom(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16, 1 << 20} {
		rng := rand.New(rand.NewSource(1))
		base := make([]KeyPos, n)
		for i := range base {
			base[i] = KeyPos{Key: rng.Uint64() >> 20, Pos: int32(i)}
		}
		work := make([]KeyPos, n)
		b.Run(sizeName(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(work, base)
				Sort(work, ^uint64(0)>>20, 4)
			}
		})
	}
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<16:
		return "64k"
	default:
		return "4k"
	}
}
