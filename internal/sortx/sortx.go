// Package sortx implements the parallel radix-sort engine behind stage ①
// (input sorting) and the sort-fused writeback that eliminates stage ⑤:
// out-of-place MSD/LSD byte sorts over (uint64 key, int32 pos) pairs and
// over (uint64 key, float64 val) runs.
//
// The parallel driver mirrors the lock-free two-pass HtY build
// (hashtab/build2p.go): one MSD byte pass — per-thread histograms, a prefix
// sum, then a cooperative scatter with per-thread cursors — splits the
// input into at most 256 partitions that are then finished independently,
// in parallel, with stable LSD byte passes. Byte positions that are
// constant across the whole input (bounded above by the radix's bit width
// and detected exactly with OR/AND aggregates folded into the histogram
// pass) are skipped entirely, so a tensor whose LN keys span 34 bits pays
// at most 5 byte passes instead of 8, and all-equal keys pay none.
package sortx

import (
	"math/bits"

	"sparta/internal/invariant"
	"sparta/internal/parallel"
)

// KeyPos pairs an LN-encoded coordinate with its original position. The coo
// sorter builds Pos = 0,1,2,..., so a key-stable sort reproduces the
// comparison sorter's (key, pos) tie-broken order exactly.
type KeyPos struct {
	Key uint64
	Pos int32
}

// Stats reports how one Sort call spent its byte passes; the partition
// counts feed the sptc_sort_* skew metrics.
type Stats struct {
	Sorted     bool // input was already key-sorted; no passes ran at all
	Serial     bool // took the serial LSD path (small input or one thread)
	Partitions int  // non-empty MSD partitions (parallel path only)
	MaxRun     int  // largest MSD partition size
	Passes     int  // byte passes executed (the MSD pass included)
	Skipped    int  // byte passes skipped because the byte is constant
}

const (
	// parallelMin is the input size below which the MSD partition
	// machinery (two extra sweeps plus per-thread tables) costs more than
	// it saves over the plain serial LSD loop.
	parallelMin = 1 << 14
	// insertionMax is the run length at or below which insertion sort
	// beats counting passes.
	insertionMax = 24
)

// Sort orders a ascending by Key, stably: equal keys keep their input
// order. maxKey bounds every key (callers pass the radix's Card()-1), which
// caps the byte positions ever scanned. One scratch buffer of len(a) is the
// only allocation beyond constant-size per-thread tables.
func Sort(a []KeyPos, maxKey uint64, threads int) Stats {
	n := len(a)
	nb := (bits.Len64(maxKey) + 7) / 8
	if n < 2 || nb == 0 {
		return Stats{Serial: true, Skipped: nb}
	}
	// Already-sorted pre-scan: a contraction over trailing modes permutes X
	// with the identity, so stage ① often re-sorts sorted data. The scan is
	// one cheap sequential sweep (comparison sorts get this for free; byte
	// passes do not), and Pos ascending on equal keys is exactly the stable
	// order, so nothing needs to move.
	if keysSorted(a) {
		return Stats{Sorted: true}
	}
	threads = parallel.Clamp(threads, n)
	if threads == 1 || n < parallelMin {
		return serialSort(a, nb)
	}
	return parallelSort(a, nb, threads)
}

// serialSort is the single-threaded LSD loop: one histogram + scatter per
// non-constant byte, ping-ponging between a and one scratch buffer.
func serialSort(a []KeyPos, nb int) Stats {
	st := Stats{Serial: true}
	n := len(a)
	if n <= insertionMax {
		insertionKP(a)
		return st
	}
	buf := make([]KeyPos, n)
	src, dst := a, buf
	for b := 0; b < nb; b++ {
		shift := uint(8 * b)
		var counts [256]int
		for i := range src {
			counts[src[i].Key>>shift&0xff]++
		}
		if counts[src[0].Key>>shift&0xff] == n {
			st.Skipped++
			continue
		}
		var off [256]int
		pos := 0
		for v := 0; v < 256; v++ {
			off[v] = pos
			pos += counts[v]
		}
		for i := range src {
			v := src[i].Key >> shift & 0xff
			dst[off[v]] = src[i]
			off[v]++
		}
		src, dst = dst, src
		st.Passes++
	}
	if st.Passes%2 == 1 {
		copy(a, src)
	}
	return st
}

// parallelSort runs the MSD partition pass and then finishes every
// partition independently. The MSD byte is the highest byte that actually
// varies — not the width top — so inputs whose keys differ only in one
// dense byte partition on exactly that byte and pay zero LSD passes.
func parallelSort(a []KeyPos, nb, threads int) Stats {
	n := len(a)
	st := Stats{}

	// Histogram pass: per-thread byte counts plus OR/AND aggregates that
	// reveal which byte positions vary at all. parallel.For's static split
	// is deterministic, so the scatter pass below revisits identical
	// per-thread ranges.
	partial := make([][256]int, threads)
	ors := make([]uint64, threads)
	ands := make([]uint64, threads)
	histogram := func(shift uint) {
		parallel.For(threads, n, func(tid, lo, hi int) {
			var h [256]int
			or, and := uint64(0), ^uint64(0)
			for i := lo; i < hi; i++ {
				k := a[i].Key
				or |= k
				and &= k
				h[k>>shift&0xff]++
			}
			partial[tid] = h
			ors[tid], ands[tid] = or, and
		})
	}
	bTop := nb - 1
	histogram(uint(8 * bTop))
	orAll, andAll := uint64(0), ^uint64(0)
	for t := 0; t < threads; t++ {
		orAll |= ors[t]
		andAll &= ands[t]
	}
	invariant.Assertf(bits.Len64(orAll) <= 8*nb,
		"sortx: key with %d significant bits exceeds the %d-byte radix width", bits.Len64(orAll), nb)
	diff := orAll ^ andAll
	if diff == 0 {
		// All keys are equal: stability makes the sort a no-op.
		st.Partitions, st.MaxRun, st.Skipped = 1, n, nb
		return st
	}
	msd := (bits.Len64(diff) - 1) / 8
	st.Skipped += bTop - msd // constant high bytes below the width top
	if msd != bTop {
		histogram(uint(8 * msd)) // re-count on the byte that actually varies
	}

	// Partition bounds and per-thread scatter cursors (the build2p
	// pattern): thread t starts each partition at the global prefix plus
	// the counts of the threads before it, so the scatter is stable and
	// lock-free.
	bounds := make([]int, 257)
	for v := 0; v < 256; v++ {
		sum := 0
		for t := 0; t < threads; t++ {
			sum += partial[t][v]
		}
		bounds[v+1] = bounds[v] + sum
	}
	invariant.Assertf(bounds[256] == n,
		"sortx: MSD histogram sums to %d, want %d", bounds[256], n)
	cursors := make([][256]int, threads)
	var run [256]int
	copy(run[:], bounds[:256])
	for t := 0; t < threads; t++ {
		cursors[t] = run
		for v := 0; v < 256; v++ {
			run[v] += partial[t][v]
		}
	}
	shift := uint(8 * msd)
	buf := make([]KeyPos, n)
	parallel.For(threads, n, func(tid, lo, hi int) {
		off := &cursors[tid]
		for i := lo; i < hi; i++ {
			v := a[i].Key >> shift & 0xff
			buf[off[v]] = a[i]
			off[v]++
		}
	})
	st.Passes++

	// LSD passes for the varying bytes below the MSD, run to completion
	// within each partition. Chunk 1: partition sizes are skewed and 256
	// partitions over few threads balance fine at that grain.
	var passes []uint
	for b := 0; b < msd; b++ {
		if diff>>(8*b)&0xff != 0 {
			passes = append(passes, uint(8*b))
		} else {
			st.Skipped++
		}
	}
	st.Passes += len(passes)
	for v := 0; v < 256; v++ {
		if sz := bounds[v+1] - bounds[v]; sz > 0 {
			st.Partitions++
			if sz > st.MaxRun {
				st.MaxRun = sz
			}
		}
	}
	parallel.ForChunked(threads, 256, 1, func(_, blo, bhi int) {
		for p := blo; p < bhi; p++ {
			lo, hi := bounds[p], bounds[p+1]
			if lo == hi {
				continue
			}
			seg, out := buf[lo:hi], a[lo:hi]
			if len(passes) == 0 || hi-lo <= insertionMax {
				copy(out, seg)
				if len(passes) > 0 {
					insertionKP(out)
				}
				continue
			}
			lsdRange(seg, out, passes)
		}
	})
	return st
}

// lsdRange runs the byte passes over one partition, ping-ponging between
// seg (scratch, holding the partition) and out (its final destination), and
// guarantees the result lands in out. Bytes constant within the partition
// are skipped even when they vary globally.
//
// The scatter is written for bounds-check elimination (the -perf lint gate
// holds this function at zero escapes and zero bounds checks): the
// impossible conditions — empty views, a counting-sort offset outside the
// partition — are explicit guards the prover can consume instead of
// implicit panics in the inner loop.
func lsdRange(seg, out []KeyPos, passes []uint) {
	cur, alt := seg, out
	swapped := false
	for _, shift := range passes {
		if len(cur) == 0 || len(alt) < len(cur) {
			return // impossible: both views cover the same partition
		}
		alt = alt[:len(cur)]
		var counts [256]int
		for i := range cur {
			counts[cur[i].Key>>shift&0xff]++
		}
		if counts[cur[0].Key>>shift&0xff] == len(cur) {
			continue
		}
		var off [256]int
		pos := 0
		for v := 0; v < 256; v++ {
			off[v] = pos
			pos += counts[v]
		}
		for i := range cur {
			v := cur[i].Key >> shift & 0xff
			j := off[v]
			if uint(j) >= uint(len(alt)) {
				// Counting-sort offsets tile [0,len) exactly; reachable
				// only on corruption the assert build would catch.
				if invariant.Enabled {
					invariant.Assertf(false,
						"sortx: LSD scatter offset %d outside partition of %d", j, len(alt))
				}
				continue
			}
			alt[j] = cur[i]
			off[v] = j + 1
		}
		cur, alt = alt, cur
		swapped = !swapped
	}
	// An even number of executed passes leaves the data in seg.
	if !swapped {
		copy(out, cur)
	}
}

// keysSorted reports whether a is already non-decreasing by key.
func keysSorted(a []KeyPos) bool {
	for i := 1; i < len(a); i++ {
		if a[i].Key < a[i-1].Key {
			return false
		}
	}
	return true
}

// insertionKP sorts a tiny slice stably by key.
func insertionKP(a []KeyPos) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j].Key < a[j-1].Key; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// pairInsertionMax is the run length at or below which SortPairs uses
// insertion sort; fused-writeback runs are usually this small.
const pairInsertionMax = 32

// SortPairs sorts the parallel arrays keys/vals ascending by key — the
// per-sub-tensor run sorter of the sort-fused writeback. It runs serially
// (callers parallelize across runs); *scratchK/*scratchV are grown once and
// reused, so a worker's whole Zlocal sorts with at most one allocation.
// Equal keys keep their input order (LSD is stable), though accumulator
// runs never contain duplicates. maxKey bounds the keys as in Sort.
func SortPairs(keys []uint64, vals []float64, maxKey uint64, scratchK *[]uint64, scratchV *[]float64) {
	n := len(keys)
	if n < 2 {
		return
	}
	sorted := true
	for i := 1; i < n; i++ {
		if keys[i] < keys[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if n <= pairInsertionMax {
		for i := 1; i < n; i++ {
			for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
				keys[j], keys[j-1] = keys[j-1], keys[j]
				vals[j], vals[j-1] = vals[j-1], vals[j]
			}
		}
		return
	}
	// OR/AND aggregates pick out the varying bytes: one sub-tensor's
	// LN(Fy) run often shares its high bytes, which then cost nothing.
	or, and := uint64(0), ^uint64(0)
	for _, k := range keys {
		or |= k
		and &= k
	}
	diff := or ^ and
	if diff == 0 {
		return
	}
	if cap(*scratchK) < n {
		*scratchK = make([]uint64, n)
		*scratchV = make([]float64, n)
	}
	srcK, srcV := keys, vals
	dstK, dstV := (*scratchK)[:n], (*scratchV)[:n]
	nb := (bits.Len64(maxKey) + 7) / 8
	passes := 0
	for b := 0; b < nb; b++ {
		if diff>>(8*b)&0xff == 0 {
			continue
		}
		shift := uint(8 * b)
		var counts [256]int
		for _, k := range srcK {
			counts[k>>shift&0xff]++
		}
		var off [256]int
		pos := 0
		for v := 0; v < 256; v++ {
			off[v] = pos
			pos += counts[v]
		}
		for i, k := range srcK {
			v := k >> shift & 0xff
			dstK[off[v]] = k
			dstV[off[v]] = srcV[i]
			off[v]++
		}
		srcK, srcV, dstK, dstV = dstK, dstV, srcK, srcV
		passes++
	}
	if passes%2 == 1 {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}
