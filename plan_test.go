package sparta

import (
	"strings"
	"testing"
)

// intValued replaces a tensor's values with small positive integers so
// every product and partial sum in a contraction is exact in float64 —
// then any contraction order yields bitwise-identical outputs, which is
// what lets these tests assert Equal (exact ==) across orders.
func intValued(t *Tensor) *Tensor {
	for i := range t.Vals {
		t.Vals[i] = float64(1 + i%3)
	}
	return t
}

// adversarialChain builds the planner's bread-and-butter case: a 4-tensor
// matrix chain written left-associated, where the first product is by far
// the largest intermediate and the right-associated order is much cheaper
// (D is tiny, so C×D collapses everything downstream).
func adversarialChain(seed int64) ([]ChainStep, map[string]*Tensor) {
	steps := []ChainStep{
		{Out: "AB", Spec: "ab,bc->ac", X: "A", Y: "B"},
		{Out: "ABC", Spec: "ac,cd->ad", X: "AB", Y: "C"},
		{Out: "Z", Spec: "ad,de->ae", X: "ABC", Y: "D"},
	}
	inputs := map[string]*Tensor{
		"A": intValued(Random([]uint64{60, 60}, 2400, seed)),
		"B": intValued(Random([]uint64{60, 60}, 2400, seed+1)),
		"C": intValued(Random([]uint64{60, 60}, 2400, seed+2)),
		"D": intValued(Random([]uint64{60, 4}, 40, seed+3)),
	}
	return steps, inputs
}

func TestPlanChainReordersAdversarialChain(t *testing.T) {
	steps, inputs := adversarialChain(101)
	pr, err := PlanChain(steps, inputs, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Planned {
		t.Fatalf("planner kept the written order: %s", pr.Reason)
	}
	if !pr.Exhaustive {
		t.Error("4-leaf network should be searched exhaustively")
	}
	if pr.PlannedCostNS >= pr.NaiveCostNS {
		t.Errorf("planned cost %.0f >= naive %.0f", pr.PlannedCostNS, pr.NaiveCostNS)
	}
	if len(pr.Steps) != len(steps) {
		t.Fatalf("planned %d steps from %d", len(pr.Steps), len(steps))
	}
	// The written tree keeps the ruinous A×B first contraction; the
	// planner must not.
	if strings.HasPrefix(pr.Order, "(((A×B)") {
		t.Errorf("planned order still left-associated: %s", pr.Order)
	}
	if pr.NaiveOrder != "(((A×B)×C)×D)" {
		t.Errorf("naive order rendered as %s", pr.NaiveOrder)
	}
	// The final step must keep the chain's output name.
	if pr.Steps[len(pr.Steps)-1].Out != "Z" {
		t.Errorf("final planned step is %q", pr.Steps[len(pr.Steps)-1].Out)
	}
	if len(pr.StepOrders) != len(pr.Steps) || len(pr.EstNNZ) != len(pr.Steps) {
		t.Fatalf("StepOrders/EstNNZ lengths %d/%d for %d steps",
			len(pr.StepOrders), len(pr.EstNNZ), len(pr.Steps))
	}
}

// TestEvalChainPlannedBitwiseIdentical is the acceptance gate: with exact
// (integer-valued) inputs, PlannerAuto must produce the same final tensor
// as PlannerOff, bit for bit, while actually reordering.
func TestEvalChainPlannedBitwiseIdentical(t *testing.T) {
	steps, inputs := adversarialChain(202)
	off, err := EvalChain(steps, inputs, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := EvalChain(steps, inputs, Options{Algorithm: AlgSparta, Planner: PlannerAuto})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Reports[0].PlannedOrder == "" {
		t.Fatal("PlannerAuto did not reorder the adversarial chain")
	}
	zOff, zAuto := off.Tensors["Z"], auto.Tensors["Z"]
	if zOff == nil || zAuto == nil {
		t.Fatal("missing final output")
	}
	if !zOff.Equal(zAuto) {
		t.Fatal("planned output differs from written-order output")
	}
	// Every step report carries the planner annotations.
	for i, rep := range auto.Reports {
		if rep.PlannedOrder == "" {
			t.Errorf("step %d missing PlannedOrder", i)
		}
		if rep.EstimatedNNZ <= 0 {
			t.Errorf("step %d EstimatedNNZ = %d", i, rep.EstimatedNNZ)
		}
	}
	for i, rep := range off.Reports {
		if rep.PlannedOrder != "" || rep.EstimatedNNZ != 0 {
			t.Errorf("PlannerOff step %d carries planner annotations", i)
		}
	}
}

// TestEvalChainPlannedSweep diffs PlannerAuto against PlannerOff across a
// variety of chain shapes, kernels, and seeds — outputs must be exactly
// equal whether or not the planner chose to reorder.
func TestEvalChainPlannedSweep(t *testing.T) {
	type shape struct {
		name  string
		steps []ChainStep
		build func(seed int64) map[string]*Tensor
	}
	shapes := []shape{
		{
			name: "matrix-chain-5",
			steps: []ChainStep{
				{Out: "P1", Spec: "ab,bc->ac", X: "T1", Y: "T2"},
				{Out: "P2", Spec: "ac,cd->ad", X: "P1", Y: "T3"},
				{Out: "P3", Spec: "ad,de->ae", X: "P2", Y: "T4"},
				{Out: "Z", Spec: "ae,ef->af", X: "P3", Y: "T5"},
			},
			build: func(seed int64) map[string]*Tensor {
				return map[string]*Tensor{
					"T1": intValued(Random([]uint64{30, 30}, 500, seed)),
					"T2": intValued(Random([]uint64{30, 30}, 500, seed+1)),
					"T3": intValued(Random([]uint64{30, 30}, 500, seed+2)),
					"T4": intValued(Random([]uint64{30, 5}, 40, seed+3)),
					"T5": intValued(Random([]uint64{5, 30}, 40, seed+4)),
				}
			},
		},
		{
			name: "order3-ccsd-style",
			steps: []ChainStep{
				{Out: "W", Spec: "abe,ec->abc", X: "T", Y: "V"},
				{Out: "U", Spec: "abc,cf->abf", X: "W", Y: "S"},
				{Out: "Z", Spec: "abf,fb->a", X: "U", Y: "R"},
			},
			build: func(seed int64) map[string]*Tensor {
				return map[string]*Tensor{
					"T": intValued(Random([]uint64{20, 16, 12}, 900, seed)),
					"V": intValued(Random([]uint64{12, 14}, 80, seed+1)),
					"S": intValued(Random([]uint64{14, 10}, 70, seed+2)),
					"R": intValued(Random([]uint64{10, 16}, 60, seed+3)),
				}
			},
		},
		{
			name: "shared-input",
			steps: []ChainStep{
				{Out: "G", Spec: "ab,cb->ac", X: "M", Y: "M"},
				{Out: "H", Spec: "ac,cd->ad", X: "G", Y: "N"},
				{Out: "Z", Spec: "ad,da->", X: "H", Y: "K"},
			},
			build: func(seed int64) map[string]*Tensor {
				return map[string]*Tensor{
					"M": intValued(Random([]uint64{25, 20}, 300, seed)),
					"N": intValued(Random([]uint64{25, 15}, 150, seed+1)),
					"K": intValued(Random([]uint64{15, 25}, 90, seed+2)),
				}
			},
		},
	}
	kernels := []Kernel{KernelFlat, KernelChained}
	for _, sh := range shapes {
		for _, k := range kernels {
			for seed := int64(0); seed < 3; seed++ {
				inputs := sh.build(1000*seed + 7)
				base := Options{Algorithm: AlgSparta, Kernel: k}
				off, err := EvalChain(sh.steps, inputs, base)
				if err != nil {
					t.Fatalf("%s/%v/%d off: %v", sh.name, k, seed, err)
				}
				autoOpt := base
				autoOpt.Planner = PlannerAuto
				auto, err := EvalChain(sh.steps, inputs, autoOpt)
				if err != nil {
					t.Fatalf("%s/%v/%d auto: %v", sh.name, k, seed, err)
				}
				if !off.Tensors["Z"].Equal(auto.Tensors["Z"]) {
					t.Errorf("%s/%v/%d: planned output differs", sh.name, k, seed)
				}
			}
		}
	}
}

// TestPlanChainUnplannableFallsBack: chains the planner cannot reorder come
// back unchanged with a reason, and PlannerAuto still executes them.
func TestPlanChainUnplannableFallsBack(t *testing.T) {
	a := intValued(Random([]uint64{12, 10}, 80, 51))
	b := intValued(Random([]uint64{10, 12}, 80, 52))
	// W is consumed twice — reordering cannot preserve the sharing.
	steps := []ChainStep{
		{Out: "W", Spec: "ab,bc->ac", X: "A", Y: "B"},
		{Out: "Z", Spec: "ac,ca->", X: "W", Y: "W"},
	}
	inputs := map[string]*Tensor{"A": a, "B": b}
	pr, err := PlanChain(steps, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Planned {
		t.Fatal("planned a chain with a twice-consumed intermediate")
	}
	if pr.Reason == "" {
		t.Error("no reason for the fallback")
	}
	if len(pr.Steps) != len(steps) || pr.Steps[0] != steps[0] || pr.Steps[1] != steps[1] {
		t.Error("fallback did not return the written steps")
	}
	off, err := EvalChain(steps, inputs, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := EvalChain(steps, inputs, Options{Algorithm: AlgSparta, Planner: PlannerAuto})
	if err != nil {
		t.Fatal(err)
	}
	if !off.Tensors["Z"].Equal(auto.Tensors["Z"]) {
		t.Error("fallback execution differs from PlannerOff")
	}
}

// TestPlanChainKeepsGoodOrder: a chain already in its best order must come
// back Planned=false (the DP includes the written tree, so a planned
// result can never be priced above it).
func TestPlanChainKeepsGoodOrder(t *testing.T) {
	// The right-associated version of the adversarial chain.
	steps := []ChainStep{
		{Out: "CD", Spec: "cd,de->ce", X: "C", Y: "D"},
		{Out: "BCD", Spec: "bc,ce->be", X: "B", Y: "CD"},
		{Out: "Z", Spec: "ab,be->ae", X: "A", Y: "BCD"},
	}
	_, inputs := adversarialChain(303)
	pr, err := PlanChain(steps, inputs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Planned && pr.PlannedCostNS >= pr.NaiveCostNS {
		t.Errorf("planned a not-cheaper order: %.0f >= %.0f", pr.PlannedCostNS, pr.NaiveCostNS)
	}
}

func TestFitPlannerModel(t *testing.T) {
	// With no reports every coefficient keeps its default.
	m := FitPlannerModel(nil)
	if m.ProbeNS <= 0 || m.AccumNS <= 0 {
		t.Fatalf("default model has non-positive terms: %+v", m)
	}
	// A real run produces a model with positive terms throughout.
	x := Random([]uint64{50, 40, 30}, 4000, 61)
	y := Random([]uint64{30, 35}, 1500, 62)
	_, rep, err := Einsum("abc,cd->abd", x, y, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	m = FitPlannerModel([]*Report{rep})
	for name, v := range map[string]float64{
		"sortx": m.SortXNS, "build": m.BuildNS, "probe": m.ProbeNS,
		"accum": m.AccumNS, "write": m.WriteNS,
	} {
		if v <= 0 {
			t.Errorf("fitted %s coefficient %v <= 0", name, v)
		}
	}
}
