// Benchmarks regenerating the paper's evaluation, one family per table and
// figure (DESIGN.md §4 maps each to its experiment). Workload sizes default
// to laptop scale; the sptc-bench command runs the same experiments with a
// -scale flag for larger sweeps.
//
// This is an external test package (sparta_test): internal/bench imports
// the root package for the planner duel, so an in-package test file could
// not import it back without a cycle.
package sparta_test

import (
	"fmt"
	"testing"

	"sparta/internal/bench"
	"sparta/internal/blocksparse"
	"sparta/internal/core"
	"sparta/internal/csf"
	"sparta/internal/gen"
	"sparta/internal/hashtab"
	"sparta/internal/hetmem"
)

// benchConfig is the shared workload scale for benchmarks: small enough
// that the O(nnz_X * nnz_Y) baseline finishes inside -benchtime.
func benchConfig() bench.Config {
	c := bench.Default()
	c.Scale = 2000
	return c
}

// benchWorkloads is the Fig. 2/4 dataset-contraction matrix.
func benchWorkloads() []gen.Workload { return gen.Fig4Workloads() }

func runWorkloadBench(b *testing.B, wl gen.Workload, alg core.Algorithm) {
	b.Helper()
	c := benchConfig()
	x := c.Tensor(wl.Preset) // generate outside the timed region
	cx, cy := wl.ContractModes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z, _, err := core.Contract(x, x, cx, cy, core.Options{Algorithm: alg, Threads: c.Threads})
		if err != nil {
			b.Fatal(err)
		}
		if z.NNZ() == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkFig2 times the SpTC-SPA baseline on every workload; its stage
// breakdown is Figure 2.
func BenchmarkFig2(b *testing.B) {
	for _, wl := range benchWorkloads() {
		b.Run(wl.Name(), func(b *testing.B) { runWorkloadBench(b, wl, core.AlgSPA) })
	}
}

// BenchmarkFig4 times all three algorithms per workload; the ratios are
// Figure 4's speedups.
func BenchmarkFig4(b *testing.B) {
	for _, alg := range []core.Algorithm{core.AlgSPA, core.AlgCOOHtA, core.AlgSparta} {
		for _, wl := range benchWorkloads() {
			b.Run(fmt.Sprintf("%v/%s", alg, wl.Name()), func(b *testing.B) {
				runWorkloadBench(b, wl, alg)
			})
		}
	}
}

// BenchmarkFig5 times the block-sparse (ITensor-style) contraction against
// element-wise Sparta on the Table 4 Hubbard pairs (a representative
// subset; sptc-bench -exp fig5 runs all ten).
func BenchmarkFig5(b *testing.B) {
	for _, id := range []int{1, 4, 10} {
		bx, by, spec, err := gen.Hubbard(id, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("SpTC%d/Block", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := blocksparse.Contract(bx, by, spec.CModesX, spec.CModesY, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		x := bx.ToCOO(gen.HubbardCutoff)
		y := by.ToCOO(gen.HubbardCutoff)
		b.Run(fmt.Sprintf("SpTC%d/Sparta", id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Contract(x, y, spec.CModesX, spec.CModesY,
					core.Options{Algorithm: core.AlgSparta}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6 sweeps the thread count on the paper's scaling workloads.
func BenchmarkFig6(b *testing.B) {
	workloads := []gen.Workload{
		{Preset: mustPreset(b, "NIPS"), Modes: 1},
		{Preset: mustPreset(b, "Vast"), Modes: 2},
		{Preset: mustPreset(b, "NIPS"), Modes: 3},
	}
	for _, wl := range workloads {
		for _, threads := range []int{1, 2, 4, 8, 12} {
			b.Run(fmt.Sprintf("%s/threads=%d", wl.Name(), threads), func(b *testing.B) {
				c := benchConfig()
				x := c.Tensor(wl.Preset)
				cx, cy := wl.ContractModes()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := core.Contract(x, x, cx, cy, core.Options{
						Algorithm: core.AlgSparta, Threads: threads,
					}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// fig7Profile builds one memory profile for the placement benchmarks.
func fig7Profile(b *testing.B) *hetmem.Profile {
	b.Helper()
	c := benchConfig()
	wl := gen.Workload{Preset: mustPreset(b, "Nell-2"), Modes: 2}
	x := c.Tensor(wl.Preset)
	z, rep, err := c.RunWorkload(wl, core.AlgSparta)
	if err != nil {
		b.Fatal(err)
	}
	return hetmem.FromReport(rep, x.Order(), x.Order(), z.Order())
}

// BenchmarkFig3 evaluates the one-object-in-PMM characterization and
// reports the simulated slowdowns as metrics.
func BenchmarkFig3(b *testing.B) {
	pf := fig7Profile(b)
	base := pf.Time(hetmem.AllDRAM())
	for i := 0; i < b.N; i++ {
		for o := hetmem.Object(0); o < hetmem.NumObjects; o++ {
			f := hetmem.AllDRAM()
			f[o] = 0
			_ = pf.Time(f)
		}
	}
	for o := hetmem.Object(0); o < hetmem.NumObjects; o++ {
		f := hetmem.AllDRAM()
		f[o] = 0
		loss := 100 * (float64(pf.Time(f))/float64(base) - 1)
		b.ReportMetric(loss, o.String()+"-loss-%")
	}
}

// BenchmarkFig7 evaluates every placement policy on the recorded profile
// and reports the simulated speedups over Optane-only.
func BenchmarkFig7(b *testing.B) {
	pf := fig7Profile(b)
	dram := pf.PeakBytes() / 4
	opt := (hetmem.OptaneOnly{}).Evaluate(pf, dram).Total
	for _, pol := range hetmem.AllPolicies() {
		b.Run(pol.Name(), func(b *testing.B) {
			var r hetmem.Result
			for i := 0; i < b.N; i++ {
				r = pol.Evaluate(pf, dram)
			}
			b.ReportMetric(float64(opt)/float64(r.Total), "speedup-vs-optane")
		})
	}
}

// BenchmarkFig8 builds the bandwidth trace.
func BenchmarkFig8(b *testing.B) {
	pf := fig7Profile(b)
	r := (hetmem.SpartaStatic{}).Evaluate(pf, pf.PeakBytes()/4)
	for i := 0; i < b.N; i++ {
		if pts := hetmem.BandwidthTrace(r, 100); len(pts) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkFig9 reports peak memory for a representative workload as a
// metric (bytes).
func BenchmarkFig9(b *testing.B) {
	pf := fig7Profile(b)
	var peak uint64
	for i := 0; i < b.N; i++ {
		peak = pf.PeakBytes()
	}
	b.ReportMetric(float64(peak), "peak-bytes")
}

// BenchmarkAblation_YBuild compares the two Y input-processing strategies:
// permute+sort (COO) vs the O(nnz) hash-table conversion (§3.3).
func BenchmarkAblation_YBuild(b *testing.B) {
	c := benchConfig()
	p := mustPreset(b, "NIPS")
	y := c.Tensor(p)
	wl := gen.Workload{Preset: p, Modes: 2}
	_, cy := wl.ContractModes()
	var fmodes []int
	in := map[int]bool{}
	for _, m := range cy {
		in[m] = true
	}
	for m := 0; m < y.Order(); m++ {
		if !in[m] {
			fmodes = append(fmodes, m)
		}
	}
	radC, err := y.RadixOf(cy)
	if err != nil {
		b.Fatal(err)
	}
	radF, err := y.RadixOf(fmodes)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("permute+sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ys := y.Clone()
			perm := append(append([]int{}, cy...), fmodes...)
			if err := ys.Permute(perm); err != nil {
				b.Fatal(err)
			}
			ys.Sort(0)
		}
	})
	b.Run("hashtable-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = hashtab.BuildHtY(y, cy, fmodes, radC, radF, 0, 0)
		}
	})
}

// BenchmarkAblation_Buckets sweeps HtY load factors on a full contraction.
func BenchmarkAblation_Buckets(b *testing.B) {
	c := benchConfig()
	p := mustPreset(b, "NIPS")
	x := c.Tensor(p)
	wl := gen.Workload{Preset: p, Modes: 2}
	cx, cy := wl.ContractModes()
	for _, mult := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("buckets=%dx", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Contract(x, x, cx, cy, core.Options{
					Algorithm:  core.AlgSparta,
					BucketsHtY: x.NNZ() * mult / 4,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_IndexSearch compares the Y index-search structures of
// §3.2/§3.3 on the same query stream: COO linear scan, CSF per-level binary
// search, and the HtY hash probe.
func BenchmarkAblation_IndexSearch(b *testing.B) {
	c := benchConfig()
	p := mustPreset(b, "NIPS")
	y := c.Tensor(p)
	wl := gen.Workload{Preset: p, Modes: 2}
	cx, cy := wl.ContractModes()
	var fmodes []int
	in := map[int]bool{}
	for _, m := range cy {
		in[m] = true
	}
	for m := 0; m < y.Order(); m++ {
		if !in[m] {
			fmodes = append(fmodes, m)
		}
	}
	ys := y.Clone()
	perm := append(append([]int{}, cy...), fmodes...)
	if err := ys.Permute(perm); err != nil {
		b.Fatal(err)
	}
	ys.Sort(0)
	ys.Dedup()
	ptrCY, err := ys.SubPtr(len(cy))
	if err != nil {
		b.Fatal(err)
	}
	cs, err := csf.FromCOO(ys)
	if err != nil {
		b.Fatal(err)
	}
	radC, _ := y.RadixOf(cy)
	radF, _ := y.RadixOf(fmodes)
	hty := hashtab.BuildHtY(y, cy, fmodes, radC, radF, 0, 0)

	xs := c.Tensor(p).Clone()
	if err := xs.Permute(append(append([]int{}, fmodes...), cx...)); err != nil {
		b.Fatal(err)
	}
	xs.Sort(0)
	nfx := xs.Order() - len(cx)
	cCols := xs.Inds[nfx:]
	nq := xs.NNZ()
	ncm := len(cy)

	cmpAt := func(pos, i int) int {
		for m := 0; m < ncm; m++ {
			a, bb := ys.Inds[m][pos], cCols[m][i]
			if a != bb {
				if a < bb {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	b.Run("COO-linear", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			hits := 0
			for i := 0; i < nq; i++ {
				for r := 0; r+1 < len(ptrCY); r++ {
					cv := cmpAt(ptrCY[r], i)
					if cv == 0 {
						hits++
						break
					}
					if cv > 0 {
						break
					}
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
	prefix := make([]uint32, ncm)
	b.Run("CSF", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			hits := 0
			for i := 0; i < nq; i++ {
				for m := 0; m < ncm; m++ {
					prefix[m] = cCols[m][i]
				}
				if _, _, _, ok := cs.LookupPrefix(prefix); ok {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("HtY", func(b *testing.B) {
		for it := 0; it < b.N; it++ {
			hits := 0
			for i := 0; i < nq; i++ {
				if items, _ := hty.Lookup(radC.EncodeStrided(cCols, i)); items != nil {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

func mustPreset(b *testing.B, name string) gen.Preset {
	b.Helper()
	p, err := gen.FindPreset(name)
	if err != nil {
		b.Fatal(err)
	}
	return p
}
