package sparta

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestFacadeContract(t *testing.T) {
	x := Random([]uint64{10, 8}, 30, 1)
	y := Random([]uint64{8, 6}, 30, 2)
	z, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	if z.NNZ() == 0 || rep.NNZZ != z.NNZ() {
		t.Fatal("facade contraction broken")
	}
}

func TestChooseY(t *testing.T) {
	big := Random([]uint64{10, 10}, 80, 3)
	small := Random([]uint64{10, 10}, 10, 4)
	if !ChooseY(big, small) {
		t.Error("should suggest swapping when X is larger")
	}
	if ChooseY(small, big) {
		t.Error("should not suggest swapping when Y is larger")
	}
}

func TestFacadeIO(t *testing.T) {
	dir := t.TempDir()
	x := Random([]uint64{5, 5}, 12, 5)
	tns := filepath.Join(dir, "x.tns")
	bin := filepath.Join(dir, "x.bin")
	if err := x.SaveTNS(tns); err != nil {
		t.Fatal(err)
	}
	if err := x.SaveBin(bin); err != nil {
		t.Fatal(err)
	}
	a, err := LoadTNS(tns)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadBin(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(x) || !b.Equal(x) {
		t.Fatal("facade IO round trip mismatch")
	}
	if _, err := ReadTNS(strings.NewReader("2\n2 2\n1 1 1\n")); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeGenerators(t *testing.T) {
	p, err := FindPreset("Uber")
	if err != nil {
		t.Fatal(err)
	}
	ten := GeneratePreset(p, 1000, 6)
	if ten.NNZ() == 0 {
		t.Fatal("preset generation empty")
	}
	if RandomSkewed([]uint64{100}, 200, 2.0, 7).NNZ() == 0 {
		t.Fatal("skewed generation empty")
	}
	if len(Presets) != 8 {
		t.Fatalf("Presets = %d", len(Presets))
	}
}

func TestFacadeBlockSparse(t *testing.T) {
	bt, err := NewBlockTensor([][]uint64{{2, 2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bt.SetBlock([]uint32{0, 0}, []float64{1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	z, err := BlockContract(bt, bt, []int{1}, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if z.NumBlocks() == 0 {
		t.Fatal("block contraction empty")
	}
	x, y, spec, err := Hubbard(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ(HubbardCutoff) == 0 || y.NNZ(HubbardCutoff) == 0 || spec.ID != 1 {
		t.Fatal("Hubbard wrapper broken")
	}
}

func TestFacadeHetmem(t *testing.T) {
	x := Random([]uint64{20, 15, 10}, 400, 8)
	y := Random([]uint64{10, 12}, 60, 9)
	z, rep, err := Contract(x, y, []int{2}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	pf := ProfileFromReport(rep, x.Order(), y.Order(), z.Order())
	if pf.PeakBytes() == 0 {
		t.Fatal("empty profile")
	}
	pols := MemPolicies()
	if len(pols) != 5 {
		t.Fatalf("MemPolicies = %d", len(pols))
	}
	for _, pol := range pols {
		r := pol.Evaluate(pf, pf.PeakBytes()/2)
		if r.Total <= 0 {
			t.Fatalf("%s: non-positive simulated time", pol.Name())
		}
	}
}

func TestFacadeFormatsAndReorder(t *testing.T) {
	x := Random([]uint64{40, 40}, 200, 21)
	h, err := CompressHiCOO(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	back := h.ToCOO()
	back.Sort(0)
	if !back.Equal(x) {
		t.Fatal("HiCOO round trip via facade broken")
	}
	r := ReorderByFrequency(x)
	xr := x.Clone()
	if err := r.Apply(xr); err != nil {
		t.Fatal(err)
	}
	if err := r.Undo(xr); err != nil {
		t.Fatal(err)
	}
	if !xr.Equal(x) {
		t.Fatal("relabel round trip via facade broken")
	}
}

func TestFacadeTwoPhase(t *testing.T) {
	x := Random([]uint64{12, 10}, 50, 22)
	y := Random([]uint64{10, 9}, 50, 23)
	a, _, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgSparta})
	if err != nil {
		t.Fatal(err)
	}
	b, rep, err := Contract(x, y, []int{1}, []int{0}, Options{Algorithm: AlgTwoPhase})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("two-phase facade result differs")
	}
	if rep.Symbolic <= 0 {
		t.Fatal("symbolic time not reported")
	}
}

func TestWorkloadAlias(t *testing.T) {
	p, _ := FindPreset("Chicago")
	w := Workload{Preset: p, Modes: 2}
	cx, cy := w.ContractModes()
	if len(cx) != 2 || len(cy) != 2 {
		t.Fatal("workload alias broken")
	}
}
