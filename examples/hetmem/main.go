// Heterogeneous-memory placement planning: run a contraction, record the
// access profile of the six data objects (X, Y, HtY, HtA, Zlocal, Z), and
// compare the §4.2 static Sparta placement against dynamic
// application-agnostic policies on a simulated DRAM+Optane system.
//
//	go run ./examples/hetmem
package main

import (
	"fmt"
	"log"
	"os"

	"sparta"
	"sparta/internal/hetmem"
	"sparta/internal/stats"
)

func main() {
	p, err := sparta.FindPreset("Nell-2")
	if err != nil {
		log.Fatal(err)
	}
	x := sparta.GeneratePreset(p, 20000, 3)
	w := sparta.Workload{Preset: p, Modes: 2}
	cx, cy := w.ContractModes()
	fmt.Printf("workload: %s on %v\n\n", w.Name(), x)

	z, rep, err := sparta.Contract(x, x, cx, cy, sparta.Options{Algorithm: sparta.AlgSparta})
	if err != nil {
		log.Fatal(err)
	}
	pf := sparta.ProfileFromReport(rep, x.Order(), x.Order(), z.Order())

	// Per-object sizes and the Eq. 5/6 estimates the planner uses before
	// the structures exist.
	fmt.Println("data-object sizes (measured) and planner estimates:")
	tab := stats.NewTable("Object", "Measured", "Planned with")
	for o := hetmem.Object(0); o < hetmem.NumObjects; o++ {
		tab.Row(o.String(), stats.FormatBytes(pf.Sizes[o]), stats.FormatBytes(pf.EstSizes[o]))
	}
	tab.Render(os.Stdout)
	fmt.Printf("peak: %s\n\n", stats.FormatBytes(pf.PeakBytes()))

	// The static plan at a DRAM budget of a quarter of peak, in the
	// paper's priority order HtY > HtA > Zlocal > Z (X, Y stay on PMM).
	dram := pf.PeakBytes() / 4
	frac := hetmem.PlanStatic(pf.EstSizes, dram, hetmem.SpartaPriority)
	fmt.Printf("static plan with %s DRAM:\n", stats.FormatBytes(dram))
	for o := hetmem.Object(0); o < hetmem.NumObjects; o++ {
		where := "PMM"
		switch {
		case frac[o] >= 1:
			where = "DRAM"
		case frac[o] > 0:
			where = fmt.Sprintf("%.0f%% DRAM", 100*frac[o])
		}
		fmt.Printf("  %-8s -> %s\n", o, where)
	}

	// Policy comparison (simulated): Sparta vs IAL vs Memory mode vs the
	// extremes.
	fmt.Println("\nsimulated policy comparison:")
	cmp := stats.NewTable("Policy", "Simulated time", "Speedup vs Optane-only", "Migrated")
	opt := (hetmem.OptaneOnly{}).Evaluate(pf, dram).Total
	for _, pol := range sparta.MemPolicies() {
		r := pol.Evaluate(pf, dram)
		cmp.Row(r.Policy, r.Total, fmt.Sprintf("%.2fx", stats.Speedup(opt, r.Total)),
			stats.FormatBytes(r.MigratedBytes))
	}
	cmp.Render(os.Stdout)

	// Bandwidth trace excerpt for the static plan (Fig. 8 flavor).
	r := (hetmem.SpartaStatic{}).Evaluate(pf, dram)
	pts := hetmem.BandwidthTrace(r, 10)
	fmt.Println("\nbandwidth trace (Sparta placement):")
	for _, pt := range pts {
		fmt.Printf("  t=%-10v DRAM %6.2f GB/s   PMM %6.2f GB/s\n", pt.At, pt.DRAM, pt.PMM)
	}
}
