// CCSD-style contraction chain: quantum-chemistry workloads (the paper's
// Uracil dataset comes from a CCSD model) evaluate long sequences of
// two-tensor contractions where each output feeds the next expression.
// This example runs a characteristic three-step chain on an element-wise
// sparse amplitude tensor and integral tensor:
//
//	W[a,b,c,d] = Σ_{e,f} T[a,b,e,f] * V[e,f,c,d]   (particle-particle ladder)
//	U[a,b,c,f] = Σ_{d}   W[a,b,c,d] * T2[d,f]      (dressing with singles)
//	E          = Σ_{a,b,c,f} U[a,b,c,f] * U[a,b,c,f] (scalar norm)
//
// It demonstrates (a) chaining: the sorted output of one SpTC is a ready
// input for the next, and (b) the §3.3 rule of probing the larger tensor.
//
//	go run ./examples/ccsd
package main

import (
	"fmt"
	"log"
	"time"

	"sparta"
)

func main() {
	// Uracil-like density regime: small dims, a few percent non-zero
	// (the paper's point: block-sparse libraries waste work below ~5%).
	p, err := sparta.FindPreset("Uracil")
	if err != nil {
		log.Fatal(err)
	}
	t1 := sparta.GeneratePreset(p, 20000, 7) // T[a,b,e,f] amplitudes
	v := sparta.GeneratePreset(p, 20000, 8)  // V integrals
	// V must expose the contracted (e,f) pair first: permute it to
	// V[e,f,c,d] so its leading mode sizes match T's trailing ones.
	if err := v.Permute([]int{2, 3, 0, 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T = %v\nV = %v\n", t1, v)

	start := time.Now()

	// Step 1: W[a,b,c,d] = Σ_{e,f} T[a,b,e,f] V[e,f,c,d]
	w, repW, err := sparta.Contract(t1, v, []int{2, 3}, []int{0, 1}, sparta.Options{
		Algorithm: sparta.AlgSparta,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1: W = %v  (%v, %d products)\n", w, repW.Total(), repW.Products)

	// Step 2: contract W's last mode with a singles matrix T2[d,f].
	t2 := sparta.RandomSkewed([]uint64{w.Dims[3], 24}, 600, 1.0, 9)
	u, repU, err := sparta.Contract(w, t2, []int{3}, []int{0}, sparta.Options{
		Algorithm: sparta.AlgSparta,
		InPlace:   true, // W is ours; skip the defensive clone
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: U = %v  (%v)\n", u, repU.Total())

	// Step 3: full contraction of U with itself -> scalar energy-like
	// quantity (output is a 1-mode, size-1 tensor).
	e, repE, err := sparta.Contract(u, u, []int{0, 1, 2, 3}, []int{0, 1, 2, 3}, sparta.Options{
		Algorithm: sparta.AlgSparta,
	})
	if err != nil {
		log.Fatal(err)
	}
	energy := 0.0
	if e.NNZ() > 0 {
		energy = e.Vals[0]
	}
	fmt.Printf("step 3: |U|^2 = %.6g  (%v)\n", energy, repE.Total())
	fmt.Printf("chain total: %v\n\n", time.Since(start))

	// The §3.3 rule: always probe the larger tensor. Compare both
	// orientations of step 1 (swapping reorders output modes, so only
	// timing is compared).
	if sparta.ChooseY(t1, v) {
		fmt.Println("ChooseY: T is larger; the swapped orientation would probe T instead")
	} else {
		fmt.Println("ChooseY: V is at least as large as T; orientation is already optimal")
	}
	for _, alg := range []sparta.Algorithm{sparta.AlgSPA, sparta.AlgSparta} {
		_, rep, err := sparta.Contract(t1, v, []int{2, 3}, []int{0, 1}, sparta.Options{Algorithm: alg})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step-1 with %-8v: %v (index search %v, accumulation %v)\n",
			alg, rep.Total(), rep.StageWall[sparta.StageSearch], rep.StageWall[sparta.StageAccum])
	}

	// The same pipeline in einsum-chain form: named intermediates, one
	// call, in-place reuse of dead intermediates handled automatically.
	res, err := sparta.EvalChain([]sparta.ChainStep{
		{Out: "W", Spec: "abef,efcd->abcd", X: "T", Y: "V"},
		{Out: "U", Spec: "abcd,df->abcf", X: "W", Y: "T2"},
		{Out: "E", Spec: "abcf,abcf->", X: "U", Y: "U"},
	}, map[string]*sparta.Tensor{"T": t1, "V": v, "T2": t2}, sparta.Options{
		Algorithm: sparta.AlgSparta,
	})
	if err != nil {
		log.Fatal(err)
	}
	e2 := res.Tensors["E"]
	chainEnergy := 0.0
	if e2.NNZ() > 0 {
		chainEnergy = e2.Vals[0]
	}
	fmt.Printf("\nEvalChain reproduces the pipeline: |U|^2 = %.6g (direct: %.6g)\n", chainEnergy, energy)
	if d := chainEnergy - energy; d > 1e-6*energy || d < -1e-6*energy {
		log.Fatal("chain result diverged from the step-by-step result")
	}
}
