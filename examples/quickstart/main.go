// Quickstart: build two small sparse tensors, contract them with Sparta,
// and inspect the result and the five-stage timing report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sparta"
)

func main() {
	// X is a 4-order tensor, Y a 4-order tensor; we contract X's modes
	// (2,3) with Y's modes (0,1) — the paper's §2.2 walk-through shape:
	//
	//	Z[i1,i2,j3,j4] = Σ_{i3,i4} X[i1,i2,i3,i4] * Y[i3,i4,j3,j4]
	x, err := sparta.NewTensor([]uint64{4, 3, 5, 6}, 0)
	if err != nil {
		log.Fatal(err)
	}
	x.Append([]uint32{0, 1, 0, 0}, 2.0)
	x.Append([]uint32{0, 1, 2, 3}, 3.0)
	x.Append([]uint32{2, 0, 2, 3}, -1.0)
	x.Append([]uint32{3, 2, 4, 5}, 4.0)

	y, err := sparta.NewTensor([]uint64{5, 6, 2, 4}, 0)
	if err != nil {
		log.Fatal(err)
	}
	y.Append([]uint32{0, 0, 0, 3}, 4.0)
	y.Append([]uint32{0, 0, 1, 0}, 5.0)
	y.Append([]uint32{2, 3, 0, 1}, 6.0)
	y.Append([]uint32{4, 5, 1, 2}, 0.5)

	z, rep, err := sparta.Contract(x, y, []int{2, 3}, []int{0, 1}, sparta.Options{
		Algorithm: sparta.AlgSparta,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("X = %v\nY = %v\nZ = %v\n\n", x, y, z)
	fmt.Println("non-zeros of Z (coordinates : value):")
	idx := make([]uint32, z.Order())
	for i := 0; i < z.NNZ(); i++ {
		z.Index(i, idx)
		fmt.Printf("  %v : %g\n", idx, z.Vals[i])
	}

	fmt.Println("\nstage timing:")
	for s := sparta.Stage(0); s < sparta.NumStages; s++ {
		fmt.Printf("  %-17s %v\n", s, rep.StageWall[s])
	}
	fmt.Printf("products=%d  HtY probes=%d  accumulator inserts=%d\n",
		rep.Products, rep.ProbesHtY, rep.AccumMiss)

	// The same contraction with the SpGEMM-style baseline gives the same
	// tensor — compare to convince yourself.
	zb, _, err := sparta.Contract(x, y, []int{2, 3}, []int{0, 1}, sparta.Options{
		Algorithm: sparta.AlgSPA,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !z.Equal(zb) {
		log.Fatal("algorithms disagree!")
	}
	fmt.Println("\nSpTC-SPA baseline produced the identical tensor ✓")
}
