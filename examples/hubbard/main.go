// Hubbard-2D block-sparse comparison: the paper's §5.3 experiment in
// miniature. Quantum-physics libraries (ITensor) keep tensors block-sparse
// — dense blocks addressed by quantum-number sectors — and contract by
// GEMM-ing matching block pairs. When the blocks are themselves mostly
// zeros (element-wise sparsity below a few percent), Sparta's element-wise
// contraction wins. This example runs one Table 4 pair both ways and checks
// the results agree.
//
//	go run ./examples/hubbard
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"sparta"
)

func main() {
	// SpTC4 from Table 4: X is 4x131x4x24x413 with 12345 blocks, Y is
	// 24x36x4x4 with 218 blocks; contract the shared (24, 4) modes.
	bx, by, spec, err := sparta.Hubbard(4, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X: dims %v, %d blocks, %d dense elements, %d non-zeros after cutoff\n",
		bx.Dims(), bx.NumBlocks(), bx.DenseElems(), bx.NNZ(sparta.HubbardCutoff))
	fmt.Printf("Y: dims %v, %d blocks, %d dense elements, %d non-zeros after cutoff\n",
		by.Dims(), by.NumBlocks(), by.DenseElems(), by.NNZ(sparta.HubbardCutoff))

	// Block-sparse contraction (the ITensor way).
	t0 := time.Now()
	bz, err := sparta.BlockContract(bx, by, spec.CModesX, spec.CModesY, 0)
	if err != nil {
		log.Fatal(err)
	}
	blockTime := time.Since(t0)
	fmt.Printf("\nblock-sparse contraction: %v (%d output blocks, %d dense elements)\n",
		blockTime, bz.NumBlocks(), bz.DenseElems())

	// Element-wise Sparta on the truncated tensors.
	x := bx.ToCOO(sparta.HubbardCutoff)
	y := by.ToCOO(sparta.HubbardCutoff)
	t0 = time.Now()
	z, rep, err := sparta.Contract(x, y, spec.CModesX, spec.CModesY, sparta.Options{
		Algorithm: sparta.AlgSparta,
		InPlace:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	spartaTime := time.Since(t0)
	fmt.Printf("element-wise Sparta:      %v (Z = %v)\n", spartaTime, z)
	fmt.Printf("speedup: %.1fx (paper's Fig. 5 average: 7.1x)\n\n", float64(blockTime)/float64(spartaTime))
	fmt.Printf("Sparta stage split: %s\n", rep.Breakdown())

	// Cross-check: the element-wise result must match the block result on
	// a sample of coordinates (the block side also multiplies sub-cutoff
	// values, so tolerate the truncation error).
	zBlockCOO := bz.ToCOO(0)
	ref := map[string]float64{}
	idx := make([]uint32, zBlockCOO.Order())
	for i := 0; i < zBlockCOO.NNZ(); i++ {
		zBlockCOO.Index(i, idx)
		ref[fmt.Sprint(idx)] = zBlockCOO.Vals[i]
	}
	var worst float64
	for i := 0; i < z.NNZ(); i++ {
		z.Index(i, idx)
		d := math.Abs(z.Vals[i] - ref[fmt.Sprint(idx)])
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max |element-wise - block-wise| over Sparta's non-zeros: %.2e (truncation cutoff %.0e)\n",
		worst, sparta.HubbardCutoff)
	if worst > 1e-4 {
		log.Fatal("results disagree beyond truncation error")
	}
	fmt.Println("block-wise and element-wise contractions agree ✓")
}
