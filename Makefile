GO ?= go

.PHONY: build test lint verify bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the in-tree analyzer suite (cmd/sptc-lint): atomicmix,
# chunkloop, lnoverflow, hotpanic, bareerr. Zero dependencies, exits
# non-zero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/sptc-lint ./...

# verify is the pre-merge gate: full build, vet, the sptc-lint analyzers,
# and the race detector over every package (the lock-free HtY build and
# open-addressed tables live or die by this). The bench experiments run
# -short under race — at full tilt they exceed the test timeout on small
# machines — while the hot packages (hashtab, core, engine), which have no
# expensive short-mode skips, always race-run in full, once plain and once
# with the -tags assert invariant checks compiled in (probe bounds, load
# factor, arena-sweep monotonicity; see internal/invariant).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/sptc-lint ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/hashtab ./internal/core ./internal/engine ./internal/plan
	$(GO) test -race -tags assert ./internal/hashtab ./internal/core ./internal/engine ./internal/plan

# bench prints the chained-vs-flat hash-kernel duel without writing JSON.
bench:
	$(GO) run ./cmd/sptc-bench -exp kernels

# bench-json regenerates the committed BENCH_*.json files at the repo root
# (scale 20000 so every cell's work dwarfs scheduling noise): BENCH_1.json is
# the hash-kernel duel, BENCH_2.json the sort/fused-writeback duel,
# BENCH_3.json the contraction-order planner duel. Every file carries the
# shared "meta" block (commit, go version, GOMAXPROCS, scale, seed, reps,
# dataset); the commit is stamped here because `go run` builds carry no VCS
# revision.
COMMIT := $(shell git rev-parse --short HEAD 2>/dev/null)
bench-json:
	$(GO) run ./cmd/sptc-bench -exp kernels -scale 20000 -commit "$(COMMIT)" -json BENCH_1.json
	$(GO) run ./cmd/sptc-bench -exp sort -scale 20000 -commit "$(COMMIT)" -json BENCH_2.json
	$(GO) run ./cmd/sptc-bench -exp planner -scale 20000 -commit "$(COMMIT)" -json BENCH_3.json

clean:
	$(GO) clean ./...
