GO ?= go

.PHONY: build test lint perf-baseline verify bench bench-json bench-grid grid-stamp grid-check loadgen slo-check slo-baseline clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs the in-tree analyzer suite (cmd/sptc-lint): atomicmix,
# chunkloop, lnoverflow, hotpanic, bareerr, spanleak, ctxloop, mutexcopy,
# deferinloop, atomicalign. Zero dependencies, exits non-zero on any
# unsuppressed finding. The -perf pass then diffs the compiler's heap-escape
# and bounds-check diagnostics over the hot-path packages against the
# committed budget (lint/hotpath_budget.json): any new escape or bounds
# check in a budgeted function fails here, not in a flamegraph.
lint:
	$(GO) run ./cmd/sptc-lint ./...
	$(GO) run ./cmd/sptc-lint -perf

# perf-baseline deliberately re-stamps lint/hotpath_budget.json from the
# current compiler diagnostics (after an accepted hot-path change). The
# marquee loops in perfClean (cmd/sptc-lint/perf.go) must still be at zero
# escapes and zero bounds checks or the stamp is refused.
perf-baseline:
	$(GO) run ./cmd/sptc-lint -perf-baseline

# verify is the pre-merge gate: full build, vet, the sptc-lint analyzers,
# the hot-path performance budget, and the race detector over every package
# (the lock-free HtY build and open-addressed tables live or die by this).
# The bench experiments run -short under race — at full tilt they exceed
# the test timeout on small machines — while the hot packages (hashtab,
# core, engine, plan, sortx, obs), which have no expensive short-mode
# skips, always race-run in full, once plain and once with the -tags assert
# invariant checks compiled in (probe bounds, load factor, arena-sweep
# monotonicity, DP split partitions, estimator non-negativity, LRU recency
# generations; see internal/invariant).
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) run ./cmd/sptc-lint ./...
	$(GO) run ./cmd/sptc-lint -perf
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/hashtab ./internal/core ./internal/engine ./internal/plan ./internal/sortx ./internal/obs ./internal/dist
	$(GO) test -race -tags assert ./internal/hashtab ./internal/core ./internal/engine ./internal/plan ./internal/sortx ./internal/obs ./internal/dist

# bench prints the chained-vs-flat hash-kernel duel without writing JSON.
bench:
	$(GO) run ./cmd/sptc-bench -exp kernels

# bench-json regenerates the committed BENCH_*.json files at the repo root
# (scale 20000 so every cell's work dwarfs scheduling noise): BENCH_1.json is
# the hash-kernel duel, BENCH_2.json the sort/fused-writeback duel,
# BENCH_3.json the contraction-order planner duel, BENCH_5.json the
# out-of-core streaming duel, and BENCH_6.json the sharded scatter/gather
# duel (BENCH_4.json is the loadgen SLO baseline, stamped by slo-baseline). Every file carries the shared "meta" block
# (commit, go version, GOMAXPROCS, scale, seed, reps, dataset); the commit
# is stamped here because `go run` builds carry no VCS revision.
COMMIT := $(shell git rev-parse --short HEAD 2>/dev/null)
bench-json:
	$(GO) run ./cmd/sptc-bench -exp kernels -scale 20000 -commit "$(COMMIT)" -json BENCH_1.json
	$(GO) run ./cmd/sptc-bench -exp sort -scale 20000 -commit "$(COMMIT)" -json BENCH_2.json
	$(GO) run ./cmd/sptc-bench -exp planner -scale 20000 -commit "$(COMMIT)" -json BENCH_3.json
	$(GO) run ./cmd/sptc-bench -exp ooc -scale 20000 -commit "$(COMMIT)" -json BENCH_5.json
	$(GO) run ./cmd/sptc-bench -exp shard -scale 20000 -commit "$(COMMIT)" -json BENCH_6.json

# bench-grid sweeps the kernels/sort/planner/ooc/shard duels across scales
# and thread counts with warmup and a summary table
# (scripts/paper/run_all.sh). Errored cells emit ERR rows and fail the run.
bench-grid:
	./scripts/paper/run_all.sh

# grid-check gates a fresh grid run against the committed per-cell
# thresholds (lint/grid_thresholds.json): every duel's speedup/slowdown
# ratios must stay within slack of the stamped values, and every
# identical_output oracle must still hold. Machine-portable because only
# ratios are gated, never absolute walls.
GRID_DIR ?= bench_grid
grid-check:
	$(GO) run ./cmd/sptc-grid -check -dir "$(GRID_DIR)" -thresholds lint/grid_thresholds.json

# grid-stamp re-stamps lint/grid_thresholds.json from the grid runs in
# GRID_DIR (after an accepted perf change). Stamping refuses cells whose
# identical_output oracle failed.
grid-stamp:
	$(GO) run ./cmd/sptc-grid -stamp -dir "$(GRID_DIR)" -thresholds lint/grid_thresholds.json

# loadgen runs one open-loop load test against a private sptc-serve
# instance (scripts/loadgen_run.sh) and writes loadgen_fresh.json plus the
# server's access log and Chrome trace next to it.
loadgen:
	./scripts/loadgen_run.sh

# slo-check gates a fresh run against the committed baseline: >50% client
# p95 regression or >1pp shed-rate increase fails (see cmd/sptc-slo; the
# default threshold absorbs same-machine run-to-run noise — tighten with
# -max-p95-pct on a quiet box).
slo-check:
	OUT=loadgen_fresh.json ./scripts/loadgen_run.sh
	$(GO) run ./cmd/sptc-slo -baseline BENCH_4.json -fresh loadgen_fresh.json

# slo-baseline re-stamps BENCH_4.json from a fresh run. sptc-slo -stamp
# refuses runs with sheds or errors, so a degraded run can never become the
# bar later changes are measured against.
slo-baseline:
	OUT=loadgen_fresh.json ./scripts/loadgen_run.sh
	$(GO) run ./cmd/sptc-slo -stamp -baseline BENCH_4.json -fresh loadgen_fresh.json
	rm -f loadgen_fresh.json

clean:
	$(GO) clean ./...
