GO ?= go

.PHONY: build test verify bench bench-json clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the pre-merge gate: full build, vet, and the race detector over
# every package (the lock-free HtY build and open-addressed tables live or
# die by this). The bench experiments run -short under race — at full tilt
# they exceed the test timeout on small machines — while the hot packages
# (hashtab, core), which have no short-mode skips, always race-run in full.
verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race -short ./...
	$(GO) test -race ./internal/hashtab ./internal/core

# bench prints the chained-vs-flat hash-kernel duel without writing JSON.
bench:
	$(GO) run ./cmd/sptc-bench -exp kernels

# bench-json regenerates the committed BENCH_1.json at the repo root
# (scale 20000 so every cell's work dwarfs scheduling noise).
bench-json:
	$(GO) run ./cmd/sptc-bench -exp kernels -scale 20000 -json BENCH_1.json

clean:
	$(GO) clean ./...
