package sparta

import (
	"fmt"
	"strings"
)

// Einsum contracts two sparse tensors with Einstein-summation notation, the
// interface chemistry codes express contractions in (e.g. the paper's §2.2
// walk-through is "abef,efcd->abcd"):
//
//	z, rep, err := sparta.Einsum("abef,efcd->abcd", x, y, opts)
//
// Rules: exactly two inputs and one output; every label names one mode
// (one letter per mode, case-sensitive); a label shared by both inputs and
// absent from the output is contracted; every other input label must appear
// in the output exactly once. Repeated labels within one operand (traces)
// are not supported — the paper's SpTC covers mode-({n},{m}) products.
//
// The output mode order follows the spec's right-hand side; when it differs
// from the engine's natural order (X's free modes then Y's), the result is
// permuted and re-sorted.
func Einsum(spec string, x, y *Tensor, opt Options) (*Tensor, *Report, error) {
	ein, err := parseEinsum(spec)
	if err != nil {
		return nil, nil, err
	}
	if len(ein.x) != x.Order() {
		return nil, nil, fmt.Errorf("einsum: spec %q gives X %d modes, tensor has %d", spec, len(ein.x), x.Order())
	}
	if len(ein.y) != y.Order() {
		return nil, nil, fmt.Errorf("einsum: spec %q gives Y %d modes, tensor has %d", spec, len(ein.y), y.Order())
	}
	z, rep, err := Contract(x, y, ein.cmodesX, ein.cmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	if !ein.identityOut {
		if err := z.Permute(ein.outPerm); err != nil {
			return nil, nil, err
		}
		if !opt.SkipOutputSort {
			z.Sort(opt.Threads)
		}
	}
	return z, rep, nil
}

// einsumPlan is the parsed form of an einsum spec.
type einsumPlan struct {
	x, y, out        []rune
	cmodesX, cmodesY []int
	outPerm          []int // Z permutation from natural (FX++FY) order to spec order
	identityOut      bool
}

func parseEinsum(spec string) (*einsumPlan, error) {
	spec = strings.ReplaceAll(spec, " ", "")
	parts := strings.Split(spec, "->")
	if len(parts) != 2 {
		return nil, fmt.Errorf("einsum: spec %q needs exactly one '->'", spec)
	}
	ins := strings.Split(parts[0], ",")
	if len(ins) != 2 {
		return nil, fmt.Errorf("einsum: spec %q needs exactly two inputs", spec)
	}
	p := &einsumPlan{x: []rune(ins[0]), y: []rune(ins[1]), out: []rune(parts[1])}
	if len(p.x) == 0 || len(p.y) == 0 {
		return nil, fmt.Errorf("einsum: empty operand in %q", spec)
	}
	for _, set := range [][]rune{p.x, p.y, p.out} {
		seen := map[rune]bool{}
		for _, r := range set {
			if !isEinsumLabel(r) {
				return nil, fmt.Errorf("einsum: invalid label %q in %q", r, spec)
			}
			if seen[r] {
				return nil, fmt.Errorf("einsum: repeated label %q within one operand of %q (traces unsupported)", r, spec)
			}
			seen[r] = true
		}
	}
	posX := map[rune]int{}
	for i, r := range p.x {
		posX[r] = i
	}
	posY := map[rune]int{}
	for i, r := range p.y {
		posY[r] = i
	}
	outSet := map[rune]bool{}
	for _, r := range p.out {
		outSet[r] = true
	}

	// Contracted labels: in both inputs, not in the output.
	for _, r := range p.x {
		yi, shared := posY[r]
		switch {
		case shared && !outSet[r]:
			p.cmodesX = append(p.cmodesX, posX[r])
			p.cmodesY = append(p.cmodesY, yi)
		case shared && outSet[r]:
			return nil, fmt.Errorf("einsum: label %q is shared by both inputs and kept in the output (batched modes unsupported)", r)
		case !shared && !outSet[r]:
			return nil, fmt.Errorf("einsum: label %q of X appears in neither Y nor the output", r)
		}
	}
	if len(p.cmodesX) == 0 {
		return nil, fmt.Errorf("einsum: %q contracts no modes", spec)
	}
	for _, r := range p.y {
		if _, shared := posX[r]; !shared && !outSet[r] {
			return nil, fmt.Errorf("einsum: label %q of Y appears in neither X nor the output", r)
		}
	}

	// Natural output order: X free labels (original order) then Y free.
	var natural []rune
	for _, r := range p.x {
		if outSet[r] {
			natural = append(natural, r)
		}
	}
	for _, r := range p.y {
		if outSet[r] {
			natural = append(natural, r)
		}
	}
	if len(natural) != len(p.out) {
		return nil, fmt.Errorf("einsum: output %q does not cover the free labels %q", string(p.out), string(natural))
	}
	natPos := map[rune]int{}
	for i, r := range natural {
		natPos[r] = i
	}
	p.identityOut = true
	p.outPerm = make([]int, len(p.out))
	for i, r := range p.out {
		j, ok := natPos[r]
		if !ok {
			return nil, fmt.Errorf("einsum: output label %q is not a free label", r)
		}
		p.outPerm[i] = j
		if i != j {
			p.identityOut = false
		}
	}
	if len(p.out) == 0 {
		// Scalar result: Z is the 1-mode size-1 tensor; nothing to permute.
		p.identityOut = true
	}
	return p, nil
}

func isEinsumLabel(r rune) bool {
	return (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}
