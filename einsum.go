package sparta

import (
	"context"

	"sparta/internal/core"
	"sparta/internal/einsum"
)

// Einsum contracts two sparse tensors with Einstein-summation notation, the
// interface chemistry codes express contractions in (e.g. the paper's §2.2
// walk-through is "abef,efcd->abcd"):
//
//	z, rep, err := sparta.Einsum("abef,efcd->abcd", x, y, opts)
//
// Rules: exactly two inputs and one output; every label names one mode
// (one letter per mode, case-sensitive); a label shared by both inputs and
// absent from the output is contracted; every other input label must appear
// in the output exactly once. Repeated labels within one operand (traces)
// are not supported — the paper's SpTC covers mode-({n},{m}) products.
//
// The output mode order follows the spec's right-hand side; when it differs
// from the engine's natural order (X's free modes then Y's), the result is
// permuted and re-sorted.
func Einsum(spec string, x, y *Tensor, opt Options) (*Tensor, *Report, error) {
	return EinsumCtx(context.Background(), spec, x, y, opt)
}

// EinsumCtx is Einsum with cancellation: a canceled context or expired
// deadline stops the contraction at the next parallel chunk boundary and
// returns ctx.Err().
func EinsumCtx(ctx context.Context, spec string, x, y *Tensor, opt Options) (*Tensor, *Report, error) {
	ein, err := einsum.Parse(spec)
	if err != nil {
		return nil, nil, err
	}
	if err := ein.CheckRanks(spec, x.Order(), y.Order()); err != nil {
		return nil, nil, err
	}
	z, rep, err := core.ContractCtx(ctx, x, y, ein.CmodesX, ein.CmodesY, opt)
	if err != nil {
		return nil, nil, err
	}
	if err := finishEinsumOutput(ein, z, opt); err != nil {
		return nil, nil, err
	}
	return z, rep, nil
}

// finishEinsumOutput applies the spec's output-mode permutation (and the
// re-sort it necessitates) to a naturally-ordered Z. Shared by the one-shot
// path above and the prepared/engine paths.
func finishEinsumOutput(ein *einsum.Plan, z *Tensor, opt Options) error {
	if ein.IdentityOut {
		return nil
	}
	if err := z.Permute(ein.OutPerm); err != nil {
		return err
	}
	if !opt.SkipOutputSort {
		z.Sort(opt.Threads)
	}
	return nil
}
