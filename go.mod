module sparta

go 1.22
