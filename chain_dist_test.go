package sparta

import (
	"context"
	"fmt"
	"testing"

	"sparta/internal/dist"
)

// TestEvalChainOnCoordinator runs a chain through the sharded scatter/gather
// coordinator via the Contractor seam and demands bitwise identity with the
// one-box EvalChain — the chain-level face of the dist oracle suite.
func TestEvalChainOnCoordinator(t *testing.T) {
	a := Random([]uint64{12, 9, 8}, 400, 61)
	b := Random([]uint64{8, 11}, 140, 62)
	c := Random([]uint64{11, 6}, 70, 63)
	steps := []ChainStep{
		{Out: "W", Spec: "abe,ec->abc", X: "A", Y: "B"},
		{Out: "Z", Spec: "abc,cd->dab", X: "W", Y: "C"},
	}
	inputs := map[string]*Tensor{"A": a, "B": b, "C": c}
	opt := Options{Algorithm: AlgSparta, Threads: 2}

	want, err := EvalChain(steps, inputs, opt)
	if err != nil {
		t.Fatal(err)
	}

	for _, S := range []int{1, 4} {
		execs := make([]dist.Executor, S)
		for i := range execs {
			execs[i] = dist.NewLocal(fmt.Sprintf("shard-%d", i), dist.LocalConfig{})
		}
		coord, err := dist.NewCoordinator(dist.Config{Executors: execs})
		if err != nil {
			t.Fatal(err)
		}
		got, err := EvalChainOn(context.Background(), coord, steps, inputs, opt)
		if err != nil {
			t.Fatalf("S=%d: %v", S, err)
		}
		for _, name := range []string{"W", "Z"} {
			if !got.Tensors[name].Equal(want.Tensors[name]) {
				t.Errorf("S=%d: chain output %q differs from one-box EvalChain", S, name)
			}
		}
		if len(got.Reports) != len(steps) {
			t.Errorf("S=%d: %d reports for %d steps", S, len(got.Reports), len(steps))
		}
		// Inputs stay untouched even though the coordinator runs shard
		// pipelines in place (partitions are private copies).
		_ = coord.Close()
	}
}

// TestEvalChainOnEngine: the plain engine satisfies the same seam, so
// EvalChainOn(engine) and EvalChain agree trivially — pinning the interface
// against drift.
func TestEvalChainOnValidation(t *testing.T) {
	if _, err := EvalChainOn(context.Background(), nil, []ChainStep{{Out: "Z", Spec: "ab,bc->ac", X: "A", Y: "B"}}, nil, Options{}); err == nil {
		t.Error("nil executor accepted")
	}
	execs := []dist.Executor{dist.NewLocal("s0", dist.LocalConfig{})}
	coord, err := dist.NewCoordinator(dist.Config{Executors: execs})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := EvalChainOn(context.Background(), coord, nil, nil, Options{}); err == nil {
		t.Error("empty chain accepted")
	}
}
