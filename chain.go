package sparta

import (
	"context"
	"fmt"

	"sparta/internal/engine"
)

// ChainStep is one step of a contraction chain: contract tensors named X
// and Y with an einsum spec, binding the result to the name Out. Steps may
// reference the chain's inputs or the outputs of earlier steps.
type ChainStep struct {
	Out  string
	Spec string
	X, Y string
}

// ChainResult carries the tensors and reports a chain produced.
type ChainResult struct {
	// Tensors maps every name — inputs and step outputs — to its tensor.
	Tensors map[string]*Tensor
	// Reports holds one contraction report per step, in step order.
	Reports []*Report
}

// EvalChain evaluates a sequence of einsum contractions, the long
// contraction sequences the paper's applications run (§1: "an SpTC with
// the exact same input is usually computed only once in a long sequence of
// tensor contractions" — the reason Sparta avoids symbolic pre-passes).
//
//	res, err := sparta.EvalChain([]sparta.ChainStep{
//		{Out: "W", Spec: "abef,efcd->abcd", X: "T", Y: "V"},
//		{Out: "E", Spec: "abcd,abcd->", X: "W", Y: "W"},
//	}, map[string]*sparta.Tensor{"T": t, "V": v}, sparta.Options{
//		Algorithm: sparta.AlgSparta,
//	})
//
// Intermediates are contracted in place where safe (an intermediate used as
// X in its last reference needs no defensive clone); inputs are never
// mutated.
func EvalChain(steps []ChainStep, inputs map[string]*Tensor, opt Options) (*ChainResult, error) {
	return EvalChainCtx(context.Background(), steps, inputs, opt)
}

// EvalChainCtx is EvalChain with cancellation. Steps run through a
// chain-local plan cache: when several steps contract against the same Y
// tensor (by content), only the first builds the HtY — the rest reuse it
// (Report.HtYReused). The cache recognizes tensors by fingerprint, so
// in-place mutation of an intermediate between uses never yields a stale
// table.
//
// With Options.Planner == PlannerAuto the chain first runs through the
// cost-based contraction-order planner (see PlanChain): when the fitted
// model prices a different tree below the written order, the reordered
// steps execute instead. The final output keeps its name, modes, and
// values; intermediate names become planner-generated ("plan·0", …) and
// each step's Report carries PlannedOrder and EstimatedNNZ. Chains the
// planner cannot reorder — or cannot improve — run exactly as written;
// planning never turns a valid chain into an error.
func EvalChainCtx(ctx context.Context, steps []ChainStep, inputs map[string]*Tensor, opt Options) (*ChainResult, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("chain: no steps")
	}
	// One plan cache for the whole chain, sized to its step count — a chain
	// never holds more distinct Y sides than steps.
	eng := engine.New(engine.Config{CacheEntries: len(steps)})
	return evalChain(ctx, eng, steps, inputs, opt)
}

// Contractor is the execution seam a chain (or a server) drives contractions
// through: the caching engine and the sharded scatter/gather coordinator
// (internal/dist) both satisfy it, so the same chain runs one-box or fanned
// out across shards with bitwise-identical results.
type Contractor interface {
	Einsum(ctx context.Context, spec string, x, y *Tensor, opt Options) (*Tensor, *Report, error)
}

// EvalChainOn is EvalChainCtx running every step through the given executor
// instead of a chain-local engine. The executor owns plan caching: a
// dist.Coordinator, for example, keeps per-shard plan caches warm across
// steps that share a Y side.
func EvalChainOn(ctx context.Context, exec Contractor, steps []ChainStep, inputs map[string]*Tensor, opt Options) (*ChainResult, error) {
	if exec == nil {
		return nil, fmt.Errorf("chain: nil executor")
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("chain: no steps")
	}
	return evalChain(ctx, exec, steps, inputs, opt)
}

func evalChain(ctx context.Context, exec Contractor, steps []ChainStep, inputs map[string]*Tensor, opt Options) (*ChainResult, error) {
	var planRes *PlanResult
	if opt.Planner == PlannerAuto {
		// Planner failures fall back to the written order: a malformed
		// chain surfaces its error from naive execution below, where the
		// step index and spec are reported.
		if pr, err := PlanChain(steps, inputs, opt); err == nil && pr.Planned {
			planRes = pr
			steps = pr.Steps
		}
	}
	res := &ChainResult{Tensors: make(map[string]*Tensor, len(inputs)+len(steps))}
	for name, t := range inputs {
		if t == nil {
			return nil, fmt.Errorf("chain: input %q is nil", name)
		}
		res.Tensors[name] = t
	}
	// lastUse[name] = index of the final step referencing name.
	lastUse := map[string]int{}
	for i, st := range steps {
		lastUse[st.X] = i
		lastUse[st.Y] = i
	}
	isInput := func(name string) bool {
		_, ok := inputs[name]
		return ok
	}
	for i, st := range steps {
		if st.Out == "" {
			return nil, fmt.Errorf("chain: step %d has no output name", i)
		}
		if _, exists := res.Tensors[st.Out]; exists {
			return nil, fmt.Errorf("chain: step %d redefines %q", i, st.Out)
		}
		x, ok := res.Tensors[st.X]
		if !ok {
			return nil, fmt.Errorf("chain: step %d references undefined tensor %q", i, st.X)
		}
		y, ok := res.Tensors[st.Y]
		if !ok {
			return nil, fmt.Errorf("chain: step %d references undefined tensor %q", i, st.Y)
		}
		stepOpt := opt
		// In-place is safe only for an intermediate X at its last use that
		// is not also this step's Y (the engine clones X but reads Y
		// untouched, so Y never needs protection... except that X's clone
		// is what InPlace skips — Y is only permuted in the baseline
		// algorithms, which also clone unless InPlace).
		if !opt.InPlace {
			stepOpt.InPlace = !isInput(st.X) && !isInput(st.Y) &&
				lastUse[st.X] == i && lastUse[st.Y] == i && st.X != st.Y
		}
		z, rep, err := exec.Einsum(ctx, st.Spec, x, y, stepOpt)
		if err != nil {
			return nil, fmt.Errorf("chain: step %d (%s): %w", i, st.Spec, err)
		}
		if planRes != nil {
			rep.PlannedOrder = planRes.StepOrders[i]
			rep.EstimatedNNZ = planRes.EstNNZ[i]
		}
		res.Tensors[st.Out] = z
		res.Reports = append(res.Reports, rep)
	}
	// Feed the measured stage walls back to the planner's model fit.
	observeReports(res.Reports)
	return res, nil
}
